// Tests of the fault-injection & resilience subsystem: spec grammar,
// deterministic hash decisions, cancellable engine timers, straggler and
// link perturbations, drop/duplicate recovery (exactly-once delivery,
// bounded retries, dead letters), bit-identical reruns under a fixed
// seed+plan, zero overhead when faults are off, and end-to-end numerical
// recovery for POTRF and BSPMM under message loss.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/bspmm/bspmm_ttg.hpp"
#include "apps/cholesky/cholesky_ttg.hpp"
#include "linalg/kernels.hpp"
#include "sparse/yukawa_gen.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "ttg/ttg.hpp"

namespace {

using namespace ttg;

// ---------------------------------------------------------------- hashing

TEST(FaultHash, DeterministicAndUniform) {
  const double a = support::hash_uniform(1, 2, 3);
  EXPECT_DOUBLE_EQ(a, support::hash_uniform(1, 2, 3));
  EXPECT_NE(a, support::hash_uniform(1, 2, 4));
  EXPECT_NE(a, support::hash_uniform(1, 3, 3));
  EXPECT_NE(a, support::hash_uniform(2, 2, 3));
  double sum = 0.0;
  for (std::uint64_t n = 0; n < 4096; ++n) {
    const double u = support::hash_uniform(7, 11, n);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 4096.0, 0.5, 0.03);  // deterministic, not statistical
}

// ---------------------------------------------------------------- grammar

TEST(FaultSpec, ParsesFullGrammar) {
  const auto p = sim::FaultPlan::parse(
      "drop=0.01,dup=0.02,straggler=*:1.5,straggler=3:2.0,latency=*:1.25,"
      "latency=0-1:2.0,bw=0-1:0.5,rma-delay=0.05:1e-4,rto=1e-3,retries=4,"
      "backoff=3",
      42);
  EXPECT_TRUE(p.enabled());
  EXPECT_TRUE(p.needs_reliability());
  EXPECT_EQ(p.seed, 42u);
  EXPECT_DOUBLE_EQ(p.drop_prob, 0.01);
  EXPECT_DOUBLE_EQ(p.dup_prob, 0.02);
  EXPECT_DOUBLE_EQ(p.compute_factor(0), 1.5);  // wildcard
  EXPECT_DOUBLE_EQ(p.compute_factor(3), 2.0);  // override
  EXPECT_DOUBLE_EQ(p.link(0, 1).latency_factor, 2.0);  // specific beats global
  EXPECT_DOUBLE_EQ(p.link(0, 1).bw_factor, 0.5);       // merged into one rule
  EXPECT_DOUBLE_EQ(p.link(2, 3).latency_factor, 1.25);
  EXPECT_DOUBLE_EQ(p.link(2, 3).bw_factor, 1.0);
  EXPECT_DOUBLE_EQ(p.rma_delay_prob, 0.05);
  EXPECT_DOUBLE_EQ(p.rma_delay, 1e-4);
  EXPECT_DOUBLE_EQ(p.rto_base, 1e-3);
  EXPECT_EQ(p.max_retries, 4);
  EXPECT_DOUBLE_EQ(p.backoff, 3.0);
  EXPECT_DOUBLE_EQ(p.max_latency_factor(), 2.0);
  EXPECT_DOUBLE_EQ(p.min_bw_factor(), 0.5);
  EXPECT_FALSE(p.describe().empty());
}

TEST(FaultSpec, EmptyIsInactive) {
  const auto p = sim::FaultPlan::parse("", 1234);
  EXPECT_FALSE(p.enabled());
  EXPECT_FALSE(p.needs_reliability());
  EXPECT_EQ(p.seed, 1234u);  // seed alone does not arm anything
}

TEST(FaultSpec, PerturbationOnlyPlansNeedNoReliability) {
  EXPECT_FALSE(sim::FaultPlan::parse("straggler=*:2").needs_reliability());
  EXPECT_FALSE(sim::FaultPlan::parse("latency=*:2,bw=*:0.5").needs_reliability());
  EXPECT_TRUE(sim::FaultPlan::parse("drop=0.001").needs_reliability());
  EXPECT_TRUE(sim::FaultPlan::parse("dup=0.001").needs_reliability());
  EXPECT_TRUE(sim::FaultPlan::parse("rma-delay=0.5:1e-4").needs_reliability());
}

TEST(FaultSpec, RejectsMalformedClauses) {
  EXPECT_THROW(sim::FaultPlan::parse("bogus=1"), support::ApiError);
  EXPECT_THROW(sim::FaultPlan::parse("drop"), support::ApiError);
  EXPECT_THROW(sim::FaultPlan::parse("drop=2"), support::ApiError);
  EXPECT_THROW(sim::FaultPlan::parse("drop=-0.1"), support::ApiError);
  EXPECT_THROW(sim::FaultPlan::parse("drop=abc"), support::ApiError);
  EXPECT_THROW(sim::FaultPlan::parse("straggler=2.0"), support::ApiError);
  EXPECT_THROW(sim::FaultPlan::parse("straggler=0:0"), support::ApiError);
  EXPECT_THROW(sim::FaultPlan::parse("latency=0:2"), support::ApiError);
  EXPECT_THROW(sim::FaultPlan::parse("rma-delay=0.5"), support::ApiError);
  EXPECT_THROW(sim::FaultPlan::parse("backoff=0.5"), support::ApiError);
  EXPECT_THROW(sim::FaultPlan::parse("retries=-1"), support::ApiError);
}

// ------------------------------------------------------- cancellable timers

TEST(EngineCancellable, CancelledEventLeavesNoTrace) {
  sim::Engine e;
  int ran = 0;
  e.at(1.0, [&] { ran += 1; });
  auto token = e.at_cancellable(2.0, [&] { ran += 100; });
  sim::Engine::cancel(token);
  const double makespan = e.run();
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(makespan, 1.0);  // cancelled timer did not advance the clock
  EXPECT_EQ(e.events_processed(), 1u);
}

TEST(EngineCancellable, UncancelledEventRuns) {
  sim::Engine e;
  int ran = 0;
  e.after_cancellable(0.5, [&] { ran += 1; });
  e.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(e.events_processed(), 1u);
}

// --------------------------------------------------------------- workloads

struct RunOutcome {
  double makespan = 0.0;
  std::uint64_t events = 0;
  std::uint64_t tasks = 0;
  rt::CommStats comm;
  net::NetStats net;
  bool resilient = false;
};

RunOutcome ghost_potrf(rt::BackendKind b, int nranks, int n, int bs,
                       const sim::FaultPlan& plan = {}) {
  auto ghost = linalg::ghost_matrix(n, bs);
  rt::WorldConfig cfg;
  cfg.machine = sim::hawk();
  cfg.nranks = nranks;
  cfg.backend = b;
  cfg.faults = plan;
  rt::World world(cfg);
  apps::cholesky::Options opt;
  opt.collect = false;
  auto res = apps::cholesky::run(world, ghost, opt);
  EXPECT_EQ(world.unfinished(), 0u);
  return RunOutcome{res.makespan,          world.engine().events_processed(),
                    res.tasks,             world.comm().stats(),
                    world.network().stats(), world.comm().resilient()};
}

// --------------------------------------------------------------- stragglers

TEST(FaultInjection, StragglerStretchesMakespan) {
  const auto base = ghost_potrf(rt::BackendKind::Parsec, 2, 512, 64);
  const auto all = ghost_potrf(rt::BackendKind::Parsec, 2, 512, 64,
                               sim::FaultPlan::parse("straggler=*:2"));
  const auto one = ghost_potrf(rt::BackendKind::Parsec, 2, 512, 64,
                               sim::FaultPlan::parse("straggler=0:2"));
  EXPECT_GT(all.makespan, base.makespan * 1.5);
  EXPECT_GT(one.makespan, base.makespan);
  EXPECT_LT(one.makespan, all.makespan + 1e-12);
  // Pure perturbation: no reliability protocol, no extra traffic.
  EXPECT_FALSE(all.resilient);
  EXPECT_EQ(all.comm.acks, 0u);
  EXPECT_EQ(all.net.drops, 0u);
}

TEST(FaultInjection, SlowLinksStretchMakespan) {
  const auto base = ghost_potrf(rt::BackendKind::Madness, 2, 512, 64);
  const auto slow = ghost_potrf(rt::BackendKind::Madness, 2, 512, 64,
                                sim::FaultPlan::parse("latency=*:4,bw=*:0.25"));
  EXPECT_GT(slow.makespan, base.makespan);
  EXPECT_FALSE(slow.resilient);
}

// ---------------------------------------------------- zero overhead when off

TEST(FaultInjection, NeutralPlanIsBitIdentical) {
  const auto base = ghost_potrf(rt::BackendKind::Parsec, 4, 512, 64);
  // Active plan whose every factor is neutral: same timeline, bit for bit.
  const auto neutral = ghost_potrf(rt::BackendKind::Parsec, 4, 512, 64,
                                   sim::FaultPlan::parse("straggler=*:1.0"));
  EXPECT_DOUBLE_EQ(base.makespan, neutral.makespan);
  EXPECT_EQ(base.events, neutral.events);
  EXPECT_EQ(base.tasks, neutral.tasks);
  EXPECT_FALSE(neutral.resilient);
  EXPECT_EQ(neutral.net.drops, 0u);
  EXPECT_EQ(neutral.comm.retries, 0u);
  EXPECT_EQ(neutral.comm.acks, 0u);
}

TEST(FaultInjection, SeedWithoutSpecChangesNothing) {
  const auto base = ghost_potrf(rt::BackendKind::Madness, 2, 512, 64);
  const auto seeded = ghost_potrf(rt::BackendKind::Madness, 2, 512, 64,
                                  sim::FaultPlan::parse("", 987654321));
  EXPECT_DOUBLE_EQ(base.makespan, seeded.makespan);
  EXPECT_EQ(base.events, seeded.events);
  EXPECT_FALSE(seeded.resilient);
}

// ------------------------------------------------------------- determinism

TEST(FaultInjection, IdenticalSeedAndPlanAreBitIdentical) {
  const auto plan = sim::FaultPlan::parse("drop=0.02,straggler=1:1.5", 99);
  for (rt::BackendKind b : {rt::BackendKind::Parsec, rt::BackendKind::Madness}) {
    const auto r1 = ghost_potrf(b, 4, 512, 64, plan);
    const auto r2 = ghost_potrf(b, 4, 512, 64, plan);
    EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
    EXPECT_EQ(r1.events, r2.events);
    EXPECT_EQ(r1.tasks, r2.tasks);
    EXPECT_EQ(r1.net.drops, r2.net.drops);
    EXPECT_EQ(r1.net.dropped_bytes, r2.net.dropped_bytes);
    EXPECT_EQ(r1.comm.retries, r2.comm.retries);
    EXPECT_EQ(r1.comm.resent_bytes, r2.comm.resent_bytes);
    EXPECT_EQ(r1.comm.recovered_msgs, r2.comm.recovered_msgs);
    EXPECT_EQ(r1.comm.dup_discards, r2.comm.dup_discards);
    EXPECT_EQ(r1.comm.acks, r2.comm.acks);
    EXPECT_EQ(r1.comm.dead_letters, 0u);
  }
}

// ------------------------------------------------------ drop/dup recovery

TEST(Resilience, DropsAreRetransmittedAndRecovered) {
  const auto plan = sim::FaultPlan::parse("drop=0.05", 7);
  for (rt::BackendKind b : {rt::BackendKind::Parsec, rt::BackendKind::Madness}) {
    const auto r = ghost_potrf(b, 4, 768, 64, plan);
    EXPECT_TRUE(r.resilient);
    EXPECT_GT(r.net.drops, 0u) << rt::to_string(b);
    EXPECT_GT(r.comm.retries, 0u) << rt::to_string(b);
    EXPECT_GT(r.comm.recovered_msgs, 0u) << rt::to_string(b);
    EXPECT_GT(r.comm.acks, 0u);
    EXPECT_EQ(r.comm.dead_letters, 0u) << rt::to_string(b);
    // A drop costs virtual time: the perturbed run cannot be faster.
    const auto base = ghost_potrf(b, 4, 768, 64);
    EXPECT_GE(r.makespan, base.makespan);
  }
}

TEST(Resilience, DuplicatesAreDiscardedExactlyOnce) {
  sim::Engine probe;  // count deliveries through a raw world
  rt::WorldConfig cfg;
  cfg.machine = sim::hawk();
  cfg.nranks = 2;
  cfg.faults = sim::FaultPlan::parse("dup=1");
  rt::World world(cfg);
  EXPECT_TRUE(world.comm().resilient());
  int delivered = 0;
  world.comm().send_message(0, 1, 4096, [&] { delivered += 1; });
  world.engine().run();
  EXPECT_EQ(delivered, 1);  // exactly-once despite dup=1
  EXPECT_GE(world.network().stats().duplicates, 1u);
  EXPECT_GE(world.comm().stats().dup_discards, 1u);
  EXPECT_EQ(world.comm().stats().dead_letters, 0u);
}

TEST(Resilience, TotalLossDeadLettersAfterBoundedRetries) {
  rt::WorldConfig cfg;
  cfg.machine = sim::hawk();
  cfg.nranks = 2;
  cfg.faults = sim::FaultPlan::parse("drop=1,retries=2,rto=1e-4");
  rt::World world(cfg);
  int delivered = 0;
  world.comm().send_message(0, 1, 4096, [&] { delivered += 1; });
  world.engine().run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(world.comm().stats().retries, 2u);  // bounded, then gave up
  EXPECT_EQ(world.comm().stats().dead_letters, 1u);
  EXPECT_GE(world.network().stats().drops, 3u);  // original + 2 retries
}

TEST(Resilience, RmaDelayIsInjectedOnSplitmdPath) {
  const auto plan = sim::FaultPlan::parse("rma-delay=1:2e-4", 5);
  const auto base = ghost_potrf(rt::BackendKind::Parsec, 2, 512, 128);
  const auto delayed = ghost_potrf(rt::BackendKind::Parsec, 2, 512, 128, plan);
  EXPECT_GT(delayed.net.rma_delays, 0u);
  EXPECT_GT(delayed.makespan, base.makespan);
  EXPECT_EQ(delayed.comm.dead_letters, 0u);
}

// ----------------------------------------------- end-to-end numerical recovery

TEST(Recovery, PotrfUnderDropMatchesFaultFreeExactly) {
  support::Rng rng(42);
  auto a = linalg::random_spd(rng, 160, 32);
  const auto ref = linalg::dense_cholesky(a.to_dense());
  for (rt::BackendKind b : {rt::BackendKind::Parsec, rt::BackendKind::Madness}) {
    rt::WorldConfig clean_cfg;
    clean_cfg.machine = sim::hawk();
    clean_cfg.nranks = 4;
    clean_cfg.backend = b;
    rt::World clean(clean_cfg);
    auto clean_res = apps::cholesky::run(clean, a);

    rt::WorldConfig cfg = clean_cfg;
    cfg.faults = sim::FaultPlan::parse("drop=0.1", 3);
    rt::World world(cfg);
    auto res = apps::cholesky::run(world, a);

    EXPECT_GT(world.network().stats().drops, 0u) << rt::to_string(b);
    EXPECT_EQ(world.comm().stats().dead_letters, 0u) << rt::to_string(b);
    // Same arithmetic in the same order: loss recovery must be invisible
    // to the numerics, not merely close.
    EXPECT_EQ(res.matrix.to_dense().max_abs_diff(clean_res.matrix.to_dense()), 0.0)
        << rt::to_string(b);
    EXPECT_LT(res.matrix.to_dense().max_abs_diff(ref), 1e-9) << rt::to_string(b);
  }
}

TEST(Recovery, BspmmUnderDropMatchesReference) {
  sparse::YukawaParams p;
  p.natoms = 40;
  p.max_tile = 64;
  p.box = 60.0;
  p.screening_length = 5.0;
  p.threshold = 1e-3;
  p.seed = 7;
  auto a = sparse::yukawa_matrix(p);
  auto ref = sparse::multiply_reference(a, a);

  rt::WorldConfig cfg;
  cfg.machine = sim::hawk();
  cfg.nranks = 4;
  cfg.faults = sim::FaultPlan::parse("drop=0.05", 11);
  rt::World world(cfg);
  auto res = apps::bspmm::run(world, a, a);
  EXPECT_EQ(world.comm().stats().dead_letters, 0u);

  // The streaming reducer accumulates in arrival order, so retransmitted
  // contributions may land in a different order than fault-free: compare
  // with a tolerance, not bit-exactly.
  double err = 0.0;
  for (auto [i, j] : ref.nonzeros()) {
    if (ref.at(i, j).norm() < 1e-300) continue;
    ASSERT_TRUE(res.c.has(i, j)) << "missing C(" << i << "," << j << ")";
    err = std::max(err, ref.at(i, j).max_abs_diff(res.c.at(i, j)));
  }
  EXPECT_LT(err, 1e-10);
}

}  // namespace
