// Work-stealing scheduler substrate + process-map-aware keymaps.
//
// The load-bearing contract: steal=off IS the historical single-queue
// scheduler — same pop order, same makespans, same message counts, same
// numerics — so every checked-in CI baseline survives the refactor. The
// golden rows below were captured on the pre-refactor scheduler and pin
// that equivalence end-to-end for all four apps on both backends. On top:
// seeded steal-on determinism, steal counters, cap compliance under
// stealing, socket-distance costs, and the keymap placement rules.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/bspmm/bspmm_ttg.hpp"
#include "apps/cholesky/cholesky_ttg.hpp"
#include "apps/fw_apsp/fw_ttg.hpp"
#include "apps/mra/mra_ttg.hpp"
#include "linalg/matrix_gen.hpp"
#include "sparse/yukawa_gen.hpp"
#include "support/rng.hpp"
#include "ttg/keymaps.hpp"
#include "ttg/ttg.hpp"

namespace {

using namespace ttg;

// ---------------------------------------------------------------------------
// steal=off equivalence with the pre-refactor scheduler (golden rows)
// ---------------------------------------------------------------------------

struct Golden {
  const char* app;
  const char* backend;
  double makespan;
  std::uint64_t messages;
  std::uint64_t splitmd_sends;
  std::uint64_t tasks;
  double checksum;
};

// Captured by running the exact configurations below on the single-queue
// scheduler as of the commit before the deque substrate landed.
constexpr Golden kGolden[] = {
    {"potrf", "parsec", 0.011019046033279654, 0ull, 38ull, 56ull,
     5341.2622308796535},
    {"fw", "parsec", 0.010114634948240147, 0ull, 128ull, 512ull,
     25938.648754752114},
    {"bspmm", "parsec", 0.0014136615217391184, 847ull, 1640ull, 18586ull,
     3.0506868746361206},
    {"mra", "parsec", 0.00034552836521739105, 1367ull, 352ull, 6272ull,
     6.0620249749848053e-06},
    {"potrf", "madness", 0.012440797165861498, 38ull, 0ull, 56ull,
     5341.2622308796535},
    {"fw", "madness", 0.011743691938095222, 128ull, 0ull, 512ull,
     25938.648754752114},
    {"bspmm", "madness", 0.0038405752449275398, 2487ull, 0ull, 18586ull,
     3.0506868746361206},
    {"mra", "madness", 0.00050195266086956421, 1064ull, 0ull, 6272ull,
     6.0620249749848036e-06},
};

const Golden& golden(const std::string& app, rt::BackendKind b) {
  for (const auto& g : kGolden)
    if (app == g.app && std::string(rt::to_string(b)) == g.backend) return g;
  ADD_FAILURE() << "no golden row for " << app;
  return kGolden[0];
}

void expect_golden(const Golden& g, double makespan, std::uint64_t messages,
                   std::uint64_t splitmd, std::uint64_t tasks, double checksum) {
  // Bit-identical, not near: steal=off must BE the old scheduler.
  EXPECT_EQ(makespan, g.makespan) << g.app << "/" << g.backend;
  EXPECT_EQ(messages, g.messages) << g.app << "/" << g.backend;
  EXPECT_EQ(splitmd, g.splitmd_sends) << g.app << "/" << g.backend;
  EXPECT_EQ(tasks, g.tasks) << g.app << "/" << g.backend;
  EXPECT_EQ(checksum, g.checksum) << g.app << "/" << g.backend;
}

TEST(StealEquiv, PotrfOffMatchesPreRefactorGolden) {
  for (auto b : {rt::BackendKind::Parsec, rt::BackendKind::Madness}) {
    support::Rng rng(5);
    auto a = linalg::random_spd(rng, 1536, 256);
    rt::WorldConfig cfg;
    cfg.nranks = 4;
    cfg.backend = b;
    rt::World world(cfg);
    auto res = apps::cholesky::run(world, a);
    double cs = 0.0;
    for (int m = 0; m < res.matrix.ntiles(); ++m)
      for (int n = 0; n <= m; ++n) cs += res.matrix.tile(m, n).norm();
    expect_golden(golden("potrf", b), res.makespan, world.comm().stats().messages,
                  world.comm().stats().splitmd_sends, res.tasks, cs);
  }
}

TEST(StealEquiv, FwOffMatchesPreRefactorGolden) {
  for (auto b : {rt::BackendKind::Parsec, rt::BackendKind::Madness}) {
    support::Rng rng(11);
    auto w0 = linalg::random_adjacency(rng, 1024, 128, 0.25);
    rt::WorldConfig cfg;
    cfg.nranks = 4;
    cfg.backend = b;
    rt::World world(cfg);
    auto res = apps::fw::run(world, w0);
    double cs = 0.0;
    for (int i = 0; i < res.matrix.ntiles(); ++i)
      for (int j = 0; j < res.matrix.ntiles(); ++j)
        cs += res.matrix.tile(i, j).norm();
    expect_golden(golden("fw", b), res.makespan, world.comm().stats().messages,
                  world.comm().stats().splitmd_sends, res.tasks, cs);
  }
}

sparse::BlockSparseMatrix small_yukawa() {
  sparse::YukawaParams p;
  p.natoms = 40;
  p.max_tile = 64;
  p.box = 60.0;
  p.screening_length = 5.0;
  p.threshold = 1e-3;
  p.seed = 7;
  return sparse::yukawa_matrix(p);
}

TEST(StealEquiv, BspmmOffMatchesPreRefactorGolden) {
  auto a = small_yukawa();
  for (auto b : {rt::BackendKind::Parsec, rt::BackendKind::Madness}) {
    rt::WorldConfig cfg;
    cfg.nranks = 4;
    cfg.backend = b;
    rt::World world(cfg);
    auto res = apps::bspmm::run(world, a, a, {});
    double cs = 0.0;
    for (auto [i, j] : res.c.nonzeros()) cs += res.c.at(i, j).norm();
    expect_golden(golden("bspmm", b), res.makespan, world.comm().stats().messages,
                  world.comm().stats().splitmd_sends, res.tasks, cs);
  }
}

TEST(StealEquiv, MraOffMatchesPreRefactorGolden) {
  auto fns = ttg::mra::random_gaussians(8, 3.0e4, 2022);
  ttg::mra::MraContext ctx(6, fns);
  for (auto b : {rt::BackendKind::Parsec, rt::BackendKind::Madness}) {
    rt::WorldConfig cfg;
    cfg.nranks = 8;
    cfg.backend = b;
    rt::World world(cfg);
    apps::mra::Options opt;
    opt.tol = 1e-4;
    opt.rand_level = 2;
    auto res = apps::mra::run(world, ctx, opt);
    double cs = 0.0;
    for (const auto& [fid, n2] : res.norm2_compressed) cs += n2;
    for (const auto& [fid, n2] : res.norm2_reconstructed) cs += n2;
    expect_golden(golden("mra", b), res.makespan, world.comm().stats().messages,
                  world.comm().stats().splitmd_sends, res.tasks, cs);
  }
}

// The off-mode pop order itself, pinned directly: priority desc, FIFO ties —
// regardless of whether configure_steal({enabled=false}) was ever called.
TEST(StealEquiv, OffPopOrderIsPriorityThenFifo) {
  rt::WorldConfig cfg;
  cfg.machine.cores_per_node = 1;
  cfg.nranks = 1;
  rt::World w(cfg);
  std::vector<int> order;
  w.scheduler(0).submit(0, 1.0, [&] { order.push_back(-1); });  // blocker
  w.scheduler(0).submit(1, 1.0, [&] { order.push_back(10); });
  w.scheduler(0).submit(3, 1.0, [&] { order.push_back(30); });
  w.scheduler(0).submit(3, 1.0, [&] { order.push_back(31); });
  w.scheduler(0).submit(2, 1.0, [&] { order.push_back(20); });
  w.fence();
  EXPECT_EQ(order, (std::vector<int>{-1, 30, 31, 20, 10}));
}

// ---------------------------------------------------------------------------
// steal-on: seeded determinism, counters, caps, socket distances
// ---------------------------------------------------------------------------

rt::WorldConfig steal_world(int workers, std::uint64_t seed = 1) {
  rt::WorldConfig cfg;
  cfg.nranks = 4;
  cfg.workers_per_rank = workers;
  cfg.work_stealing = true;
  cfg.seed = seed;
  return cfg;
}

struct StealRun {
  double makespan = 0.0;
  std::uint64_t tasks = 0;
  double checksum = 0.0;
  rt::StealStats stats;
};

StealRun bspmm_steal_run(rt::WorldConfig cfg) {
  auto a = small_yukawa();
  rt::World world(cfg);
  auto res = apps::bspmm::run(world, a, a, {});
  StealRun r;
  r.makespan = res.makespan;
  r.tasks = res.tasks;
  for (auto [i, j] : res.c.nonzeros()) r.checksum += res.c.at(i, j).norm();
  for (int rank = 0; rank < world.nranks(); ++rank) {
    const auto& s = world.scheduler(rank).steal_stats();
    r.stats.steals_local += s.steals_local;
    r.stats.steals_remote += s.steals_remote;
    r.stats.steal_fail += s.steal_fail;
    r.stats.tasks_stolen += s.tasks_stolen;
  }
  return r;
}

TEST(StealDeterminism, SeededRerunIsBitIdentical) {
  const StealRun a = bspmm_steal_run(steal_world(4));
  const StealRun b = bspmm_steal_run(steal_world(4));
  EXPECT_GT(a.stats.steals_local + a.stats.steals_remote, 0u);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.stats.steals_local, b.stats.steals_local);
  EXPECT_EQ(a.stats.steals_remote, b.stats.steals_remote);
  EXPECT_EQ(a.stats.steal_fail, b.stats.steal_fail);
  EXPECT_EQ(a.stats.tasks_stolen, b.stats.tasks_stolen);
}

TEST(StealDeterminism, NumericsAreScheduleInvariant) {
  // Stealing reorders execution but must not change results or task counts.
  rt::WorldConfig off;
  off.nranks = 4;
  off.workers_per_rank = 4;
  const StealRun with_steal = bspmm_steal_run(steal_world(4));
  const StealRun without = bspmm_steal_run(off);
  EXPECT_EQ(without.stats.steals_local + without.stats.steals_remote +
                without.stats.steal_fail,
            0u);
  EXPECT_EQ(with_steal.tasks, without.tasks);
  EXPECT_EQ(with_steal.checksum, without.checksum);
}

TEST(StealCounters, ZeroWhenOffEverywhere) {
  auto fns = ttg::mra::random_gaussians(4, 3.0e4, 2022);
  ttg::mra::MraContext ctx(6, fns);
  rt::WorldConfig cfg;
  cfg.nranks = 4;
  cfg.workers_per_rank = 2;
  rt::World world(cfg);
  world.enable_tracing();
  apps::mra::Options opt;
  opt.tol = 1e-3;
  opt.light_math = true;
  apps::mra::run(world, ctx, opt);
  for (int r = 0; r < world.nranks(); ++r) {
    const auto& s = world.scheduler(r).steal_stats();
    EXPECT_EQ(s.steals_local, 0u);
    EXPECT_EQ(s.steals_remote, 0u);
    EXPECT_EQ(s.steal_fail, 0u);
  }
  const auto totals = world.tracer().totals();
  EXPECT_EQ(totals.steals_local, 0u);
  EXPECT_EQ(totals.steals_remote, 0u);
  EXPECT_EQ(totals.steal_fail, 0u);
}

TEST(StealCounters, TracerMirrorsSchedulerStats) {
  rt::WorldConfig cfg = steal_world(4);
  auto a = small_yukawa();
  rt::World world(cfg);
  world.enable_tracing();
  apps::bspmm::run(world, a, a, {});
  rt::StealStats sched;
  for (int r = 0; r < world.nranks(); ++r) {
    const auto& s = world.scheduler(r).steal_stats();
    sched.steals_local += s.steals_local;
    sched.steals_remote += s.steals_remote;
    sched.steal_fail += s.steal_fail;
  }
  EXPECT_GT(sched.steals_local + sched.steals_remote, 0u);
  const auto totals = world.tracer().totals();
  EXPECT_EQ(totals.steals_local, sched.steals_local);
  EXPECT_EQ(totals.steals_remote, sched.steals_remote);
  EXPECT_EQ(totals.steal_fail, sched.steal_fail);
  // Per-core busy accounting covers all workers' busy time (up to
  // re-association error: busy_ accumulates in execution order, the
  // per-core slices re-add in core order).
  for (int r = 0; r < world.nranks(); ++r) {
    double sum = 0.0;
    for (int c = 0; c < world.workers_per_rank(); ++c)
      sum += world.scheduler(r).core_busy(c);
    EXPECT_NEAR(sum, world.scheduler(r).busy_time(), 1e-12);
  }
}

TEST(StealCaps, InflightCapHoldsUnderStealing) {
  // A capped job's tasks never enter the deques, so the cap holds even when
  // every other core is stealing. 1 rank x 4 workers, cap 2, plus an
  // uncapped job generating deque churn.
  rt::WorldConfig cfg;
  cfg.nranks = 1;
  cfg.workers_per_rank = 4;
  cfg.work_stealing = true;
  rt::World w(cfg);
  auto& sched = w.scheduler(0);
  sched.configure_job(rt::JobId{7}, 1, 2);
  for (int i = 0; i < 24; ++i) {
    sched.submit(rt::JobId{7}, 1, 1.0, [&sched, i] {
      if (i % 2 == 0) {
        // In-body submissions land on the producing core's deque.
        sched.submit(rt::kDefaultJob, 0, 0.5, [] {});
        sched.submit(rt::kDefaultJob, 0, 0.5, [] {});
      }
    });
  }
  w.fence();
  const auto& jc = sched.job_counters(rt::JobId{7});
  EXPECT_EQ(jc.tasks_run, 24u);
  EXPECT_LE(jc.max_inflight, 2);
}

TEST(StealSocket, CoresSplitEvenlyAcrossSockets) {
  rt::WorldConfig cfg;
  cfg.nranks = 1;
  cfg.workers_per_rank = 4;
  cfg.work_stealing = true;
  cfg.machine.sockets_per_node = 2;
  rt::World w(cfg);
  const auto& s = w.scheduler(0);
  EXPECT_EQ(s.socket_of(0), 0);
  EXPECT_EQ(s.socket_of(1), 0);
  EXPECT_EQ(s.socket_of(2), 1);
  EXPECT_EQ(s.socket_of(3), 1);
}

TEST(StealSocket, StealDistanceExtendsBusyTime) {
  // Two identical worlds, one with zero steal latencies and one with large
  // ones: same schedule structure, strictly more busy time (the thief pays
  // the distance) when steals happened.
  auto run = [](double lat_local, double lat_remote) {
    rt::WorldConfig cfg;
    cfg.nranks = 4;
    cfg.workers_per_rank = 4;
    cfg.work_stealing = true;
    cfg.machine.steal_latency_local = lat_local;
    cfg.machine.steal_latency_remote = lat_remote;
    auto a = small_yukawa();
    rt::World world(cfg);
    apps::bspmm::run(world, a, a, {});
    double busy = world.total_busy_time();
    std::uint64_t steals = 0;
    for (int r = 0; r < world.nranks(); ++r) {
      const auto& s = world.scheduler(r).steal_stats();
      steals += s.steals_local + s.steals_remote;
    }
    return std::pair<double, std::uint64_t>{busy, steals};
  };
  const auto [busy_free, steals_free] = run(0.0, 0.0);
  const auto [busy_paid, steals_paid] = run(1e-5, 1e-4);
  EXPECT_GT(steals_free, 0u);
  EXPECT_GT(steals_paid, 0u);
  EXPECT_GT(busy_paid, busy_free);
}

TEST(StealSharded, SerialAndShardedAgreeWithStealOn) {
  // Scheduler state is lane-local (one lane owns a rank's scheduler), so
  // the sharded engine must replay the same steal decisions bit-identically.
  rt::WorldConfig serial = steal_world(4);
  rt::WorldConfig sharded = steal_world(4);
  sharded.engine_lanes = 4;
  const StealRun a = bspmm_steal_run(serial);
  const StealRun b = bspmm_steal_run(sharded);
  EXPECT_GT(a.stats.steals_local + a.stats.steals_remote, 0u);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.stats.steals_local, b.stats.steals_local);
  EXPECT_EQ(a.stats.steals_remote, b.stats.steals_remote);
  EXPECT_EQ(a.stats.steal_fail, b.stats.steal_fail);
}

// ---------------------------------------------------------------------------
// keymaps
// ---------------------------------------------------------------------------

TEST(StealKeymap, CyclicEqualsBlockCyclic2D) {
  for (int nranks : {1, 2, 4, 6, 8, 12, 16}) {
    const auto km = make_keymap2d(KeymapKind::Cyclic, nranks, 4);
    const auto bc = linalg::BlockCyclic2D::make(nranks);
    for (int i = 0; i < 12; ++i)
      for (int j = 0; j < 12; ++j)
        EXPECT_EQ(km.owner(i, j), bc.owner(i, j)) << nranks;
  }
}

TEST(StealKeymap, DegeneratesToCyclicAtOneRankPerNode) {
  for (auto kind : {KeymapKind::Node2D, KeymapKind::NodeAware}) {
    const auto km = make_keymap2d(kind, 8, 1);
    const auto bc = linalg::BlockCyclic2D::make(8);
    EXPECT_EQ(km.kind, KeymapKind::Cyclic);
    for (int i = 0; i < 12; ++i)
      for (int j = 0; j < 12; ++j) EXPECT_EQ(km.owner(i, j), bc.owner(i, j));
  }
}

TEST(StealKeymap, OwnersStayInRange) {
  for (auto kind :
       {KeymapKind::Cyclic, KeymapKind::Node2D, KeymapKind::NodeAware}) {
    for (int nranks : {4, 8, 16}) {
      for (int rpn : {1, 2, 4}) {
        const auto km = make_keymap2d(kind, nranks, rpn);
        for (int i = 0; i < 20; ++i)
          for (int j = 0; j < 20; ++j) {
            const int o = km.owner(i, j);
            EXPECT_GE(o, 0);
            EXPECT_LT(o, nranks);
          }
      }
    }
  }
}

TEST(StealKeymap, NodeAwareKeepsSupertilesOnOneNode) {
  // 16 ranks, 4 per node: the ri x rj supertile of adjacent tiles shares a
  // node, and its tiles land on distinct ranks of that node.
  const int nranks = 16, rpn = 4;
  const auto km = make_keymap2d(KeymapKind::NodeAware, nranks, rpn);
  ASSERT_EQ(km.ri * km.rj, rpn);
  for (int si = 0; si < 4; ++si)
    for (int sj = 0; sj < 4; ++sj) {
      std::vector<int> owners;
      for (int di = 0; di < km.ri; ++di)
        for (int dj = 0; dj < km.rj; ++dj)
          owners.push_back(km.owner(si * km.ri + di, sj * km.rj + dj));
      const int node = owners[0] / rpn;
      for (std::size_t t = 0; t < owners.size(); ++t) {
        EXPECT_EQ(owners[t] / rpn, node) << "supertile split across nodes";
        for (std::size_t u = t + 1; u < owners.size(); ++u)
          EXPECT_NE(owners[t], owners[u]) << "two tiles on one rank";
      }
    }
}

TEST(StealKeymap, Node2DUsesEveryRank) {
  const int nranks = 8, rpn = 4;
  const auto km = make_keymap2d(KeymapKind::Node2D, nranks, rpn);
  std::vector<int> hits(nranks, 0);
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 16; ++j) hits[static_cast<std::size_t>(km.owner(i, j))]++;
  for (int r = 0; r < nranks; ++r) EXPECT_GT(hits[r], 0) << "rank " << r << " unused";
}

TEST(StealKeymap, StringRoundTrip) {
  EXPECT_EQ(keymap_from_string("cyclic"), KeymapKind::Cyclic);
  EXPECT_EQ(keymap_from_string("node2d"), KeymapKind::Node2D);
  EXPECT_EQ(keymap_from_string("node-aware"), KeymapKind::NodeAware);
  for (auto k : {KeymapKind::Cyclic, KeymapKind::Node2D, KeymapKind::NodeAware})
    EXPECT_EQ(keymap_from_string(to_string(k)), k);
  EXPECT_THROW(static_cast<void>(keymap_from_string("bogus")), support::ApiError);
}

TEST(StealKeymap, TreeNodeAwareOwnerRoutesSubtreesToNodes) {
  const int nranks = 8, rpn = 4;
  // Same coarse hash -> same node regardless of the fine hash.
  for (std::uint64_t coarse : {7ull, 123456789ull, 0xdeadbeefull}) {
    const int node0 = node_aware_owner(coarse, 0, nranks, rpn) / rpn;
    for (std::uint64_t fine = 0; fine < 32; ++fine) {
      const int o = node_aware_owner(coarse, fine, nranks, rpn);
      EXPECT_EQ(o / rpn, node0);
      EXPECT_GE(o, 0);
      EXPECT_LT(o, nranks);
    }
  }
  // Degenerate node structure falls back to the flat hash scatter.
  EXPECT_EQ(node_aware_owner(99, 13, 8, 1), 13 % 8);
  EXPECT_EQ(node_aware_owner(99, 13, 7, 4), 13 % 7);
}

TEST(StealKeymap, AppsAcceptNodeAwarePlacement) {
  // POTRF under node-aware placement on 2 nodes x 2 ranks: correct factor,
  // same task count as cyclic (placement moves work, never changes it).
  support::Rng rng(5);
  auto a = linalg::random_spd(rng, 512, 128);
  auto run_with = [&](KeymapKind km) {
    rt::WorldConfig cfg;
    cfg.nranks = 4;
    cfg.ranks_per_node = 2;
    rt::World world(cfg);
    apps::cholesky::Options opt;
    opt.keymap = km;
    return apps::cholesky::run(world, a, opt);
  };
  const auto cyc = run_with(KeymapKind::Cyclic);
  const auto naw = run_with(KeymapKind::NodeAware);
  EXPECT_EQ(cyc.tasks, naw.tasks);
  double cs_cyc = 0.0, cs_naw = 0.0;
  for (int m = 0; m < cyc.matrix.ntiles(); ++m)
    for (int n = 0; n <= m; ++n) {
      cs_cyc += cyc.matrix.tile(m, n).norm();
      cs_naw += naw.matrix.tile(m, n).norm();
    }
  EXPECT_EQ(cs_cyc, cs_naw);  // numerics are placement-invariant
}

}  // namespace
