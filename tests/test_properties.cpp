// Property-style tests: invariants swept over randomized inputs and
// parameter grids (gtest TEST_P), cutting across modules.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/cholesky/cholesky_ttg.hpp"
#include "apps/fw_apsp/fw_ttg.hpp"
#include "mra/twoscale.hpp"
#include "sparse/yukawa_gen.hpp"
#include "ttg/ttg.hpp"

namespace {

using namespace ttg;

/* ---------- TTG routing: scatter/gather conservation over rank counts ---------- */

class ScatterGather : public ::testing::TestWithParam<int> {};

TEST_P(ScatterGather, SumIsConservedAcrossRanks) {
  const int nranks = GetParam();
  rt::WorldConfig cfg;
  cfg.nranks = nranks;
  rt::World w(cfg);
  support::Rng rng(1234);

  Edge<Int1, long> in("in"), out_e("out");
  auto inc = make_tt(w,
                     [](const Int1& /*k*/, long& v, std::tuple<Out<Int1, long>>& out) {
                       ttg::send<0>(Int1{0}, v + 1, out);
                     },
                     edges(in), edges(out_e), "inc");
  // Random (but deterministic) placement.
  std::vector<int> owners(257);
  for (auto& o : owners) o = static_cast<int>(rng.uniform_int(0, nranks - 1));
  inc->set_keymap([owners](const Int1& k) {
    return owners[static_cast<std::size_t>(k.i) % owners.size()];
  });
  long sum = 0;
  auto gather = make_tt(w, [&](const Int1&, long& acc, std::tuple<>&) { sum = acc; },
                        edges(out_e), std::tuple<>{}, "gather");
  const int n = 200;
  gather->set_input_reducer<0>([](long& a, long&& b) { a += b; }, n);
  gather->set_keymap([](const Int1&) { return 0; });
  make_graph_executable(*inc);
  make_graph_executable(*gather);
  long expect = 0;
  for (int i = 0; i < n; ++i) {
    const long v = static_cast<long>(rng.uniform_int(-1000, 1000));
    expect += v + 1;
    inc->invoke(Int1{i}, v);
  }
  w.fence();
  EXPECT_EQ(sum, expect);
  EXPECT_EQ(w.unfinished(), 0u);
}

INSTANTIATE_TEST_SUITE_P(RankSweep, ScatterGather, ::testing::Values(1, 2, 3, 5, 8, 13));

/* ---------- streams: random per-key sizes ---------- */

TEST(StreamProperty, RandomPerKeyStreamSizes) {
  rt::WorldConfig cfg;
  cfg.nranks = 4;
  rt::World w(cfg);
  support::Rng rng(77);
  Edge<Int1, int> in("in"), out_e("out");
  auto red = make_tt(w,
                     [](const Int1& k, int& acc, std::tuple<Out<Int1, int>>& out) {
                       ttg::send<0>(k, acc, out);
                     },
                     edges(in), edges(out_e), "red");
  red->set_input_reducer<0>([](int& a, int&& b) { a += b; });
  std::map<int, int> got;
  auto sink = make_sink(w, out_e, [&](const Int1& k, int& v) { got[k.i] = v; });
  make_graph_executable(*red);
  make_graph_executable(*sink);
  std::map<int, int> expect;
  for (int key = 0; key < 40; ++key) {
    const int sz = static_cast<int>(rng.uniform_int(1, 9));
    red->set_argstream_size<0>(Int1{key}, sz);
    int s = 0;
    for (int i = 0; i < sz; ++i) {
      const int v = static_cast<int>(rng.uniform_int(0, 100));
      s += v;
      red->invoke(Int1{key}, v);
    }
    expect[key] = s;
  }
  w.fence();
  EXPECT_EQ(got, expect);
}

/* ---------- two-scale identities over all supported orders ---------- */

class TwoScaleOrders : public ::testing::TestWithParam<int> {};

TEST_P(TwoScaleOrders, ParentSpaceIdentityAndNormSplit) {
  const int k = GetParam();
  mra::TwoScale ts(k);
  support::Rng rng(k);
  // filter(unfilter(p)) == p
  std::vector<double> p(static_cast<std::size_t>(ts.coeffs_per_node()));
  for (auto& v : p) v = rng.uniform(-1, 1);
  std::array<std::vector<double>, 8> ch;
  for (int c = 0; c < 8; ++c) ch[static_cast<std::size_t>(c)] = ts.unfilter_child(p, c);
  auto back = ts.filter(ch);
  double err = 0;
  for (std::size_t i = 0; i < p.size(); ++i) err = std::max(err, std::abs(back[i] - p[i]));
  EXPECT_LT(err, 1e-11) << "k=" << k;
  // Pythagoras: ||children||^2 = ||parent||^2 + ||residual||^2.
  for (auto& c : ch)
    for (auto& v : c) v = rng.uniform(-1, 1);
  auto parent = ts.filter(ch);
  double c2 = 0, p2 = 0, r2 = 0;
  for (const auto& c : ch)
    for (double v : c) c2 += v * v;
  for (double v : parent) p2 += v * v;
  for (int c = 0; c < 8; ++c) {
    auto proj = ts.unfilter_child(parent, c);
    for (std::size_t i = 0; i < proj.size(); ++i) {
      const double d = ch[static_cast<std::size_t>(c)][i] - proj[i];
      r2 += d * d;
    }
  }
  EXPECT_NEAR(c2, p2 + r2, 1e-9 * c2) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(OrderSweep, TwoScaleOrders, ::testing::Values(1, 2, 3, 5, 8, 10));

/* ---------- FW over random graphs: metric properties ---------- */

class FwRandomGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FwRandomGraphs, TriangleInequalityAndReference) {
  support::Rng rng(GetParam());
  const int n = 40, bs = 10;
  auto w0 = linalg::random_adjacency(rng, n, bs, rng.uniform(0.1, 0.6));
  auto ref = linalg::dense_fw(w0.to_dense());
  rt::WorldConfig cfg;
  cfg.nranks = 4;
  rt::World world(cfg);
  auto res = apps::fw::run(world, w0);
  auto d = res.matrix.to_dense();
  EXPECT_LT(d.max_abs_diff(ref), 1e-12);
  // Closure: d(i,j) <= d(i,k) + d(k,j) for sampled triples.
  for (int trial = 0; trial < 200; ++trial) {
    const int i = static_cast<int>(rng.uniform_int(0, n - 1));
    const int j = static_cast<int>(rng.uniform_int(0, n - 1));
    const int k = static_cast<int>(rng.uniform_int(0, n - 1));
    if (d(i, k) >= linalg::kInf || d(k, j) >= linalg::kInf) continue;
    EXPECT_LE(d(i, j), d(i, k) + d(k, j) + 1e-9);
  }
  // Diagonal is zero.
  for (int i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(d(i, i), 0.0);
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, FwRandomGraphs, ::testing::Values(1u, 2u, 3u, 4u, 5u));

/* ---------- Cholesky over random SPD matrices and rank counts ---------- */

struct CholProp {
  std::uint64_t seed;
  int nranks;
};

class CholeskyRandom : public ::testing::TestWithParam<CholProp> {};

TEST_P(CholeskyRandom, FactorizationResidual) {
  const auto p = GetParam();
  support::Rng rng(p.seed);
  const int n = 72, bs = 24;
  auto a = linalg::random_spd(rng, n, bs);
  rt::WorldConfig cfg;
  cfg.nranks = p.nranks;
  rt::World world(cfg);
  auto res = apps::cholesky::run(world, a);
  auto l = res.matrix.to_dense();
  auto ad = a.to_dense();
  // ||A - L L^T||_max small relative to ||A||.
  double err = 0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      double s = 0;
      for (int k = 0; k < n; ++k) s += l(i, k) * l(j, k);
      err = std::max(err, std::abs(s - ad(i, j)));
    }
  EXPECT_LT(err, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CholeskyRandom,
                         ::testing::Values(CholProp{11, 1}, CholProp{12, 3},
                                           CholProp{13, 4}, CholProp{14, 6},
                                           CholProp{15, 9}));

/* ---------- Yukawa generator: structural invariants over params ---------- */

class YukawaParamsSweep : public ::testing::TestWithParam<double> {};

TEST_P(YukawaParamsSweep, SymmetricPatternAndMonotoneOccupancy) {
  sparse::YukawaParams p;
  p.natoms = 60;
  p.max_tile = 128;
  p.box = GetParam();
  p.threshold = 1e-6;
  p.ghost = true;
  auto m = sparse::yukawa_matrix(p);
  // Centroid-distance screening is symmetric.
  for (auto [i, j] : m.nonzeros()) EXPECT_TRUE(m.has(j, i));
  // Tighter threshold can only remove blocks.
  auto p2 = p;
  p2.threshold = 1e-3;
  auto m2 = sparse::yukawa_matrix(p2);
  EXPECT_LE(m2.nnz_tiles(), m.nnz_tiles());
  for (auto [i, j] : m2.nonzeros()) EXPECT_TRUE(m.has(i, j));
}

INSTANTIATE_TEST_SUITE_P(BoxSweep, YukawaParamsSweep,
                         ::testing::Values(40.0, 120.0, 240.0));

/* ---------- tracing through the TTG layer ---------- */

TEST(TraceProperty, TtTaskCountsMatchTrace) {
  rt::WorldConfig cfg;
  cfg.nranks = 2;
  rt::World w(cfg);
  w.enable_tracing();
  support::Rng rng(3);
  auto a = linalg::random_spd(rng, 64, 16);
  auto res = apps::cholesky::run(w, a);
  auto sum = w.tracer().summarize();
  const auto traced = sum["POTRF"].count + sum["TRSM"].count + sum["SYRK"].count +
                      sum["GEMM"].count;
  EXPECT_EQ(traced, res.tasks);
  // Every record lies within the run and has nonnegative duration.
  for (const auto& r : w.tracer().records()) {
    EXPECT_GE(r.end, r.start);
    EXPECT_GE(r.rank, 0);
    EXPECT_LT(r.rank, 2);
  }
}

/* ---------- simulator: makespans scale sanely with machine speed ---------- */

TEST(MachineProperty, FasterCoresNeverSlowTheRunDown) {
  auto run_with = [](double gflops) {
    auto ghost = linalg::ghost_matrix(512 * 8, 512);
    rt::WorldConfig cfg;
    cfg.nranks = 4;
    cfg.machine.core_gflops = gflops;
    rt::World w(cfg);
    apps::cholesky::Options opt;
    opt.collect = false;
    return apps::cholesky::run(w, ghost, opt).makespan;
  };
  EXPECT_LT(run_with(60.0), run_with(30.0));
  EXPECT_LT(run_with(30.0), run_with(15.0));
}

TEST(MachineProperty, FasterNetworkNeverSlowsTheRunDown) {
  auto run_with = [](double bw) {
    auto ghost = linalg::ghost_matrix(2048, 128);
    rt::WorldConfig cfg;
    cfg.nranks = 16;
    cfg.machine.nic_bw = bw;
    rt::World w(cfg);
    apps::fw::Options opt;
    opt.collect = false;
    return apps::fw::run(w, ghost, opt).makespan;
  };
  EXPECT_LE(run_with(46e9), run_with(23e9));
  EXPECT_LE(run_with(23e9), run_with(6e9));
}

}  // namespace
