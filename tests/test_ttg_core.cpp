// Tests of the TTG programming model itself: input matching, streaming
// terminals, broadcast, copy semantics, maps, and backend protocol use.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "linalg/tile.hpp"
#include "ttg/ttg.hpp"

namespace {

using namespace ttg;
using linalg::Tile;

WorldConfig cfg(int nranks = 2, BackendKind b = BackendKind::Parsec) {
  WorldConfig c;
  c.machine = sim::hawk();
  c.machine.cores_per_node = 2;
  c.nranks = nranks;
  c.backend = b;
  return c;
}

TEST(TtgCore, SingleTaskPipeline) {
  World w(cfg(1));
  Edge<Int1, int> in("in"), out_e("out");
  auto tt = make_tt(w,
                    [](const Int1& k, int& v, std::tuple<Out<Int1, int>>& out) {
                      ttg::send<0>(k, v * 2, out);
                    },
                    edges(in), edges(out_e), "double");
  int result = 0;
  auto sink = make_sink(w, out_e, [&](const Int1&, int& v) { result = v; });
  make_graph_executable(*tt);
  make_graph_executable(*sink);
  tt->invoke(Int1{0}, 21);
  w.fence();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(tt->tasks_executed(), 1u);
  EXPECT_EQ(w.unfinished(), 0u);
}

TEST(TtgCore, TwoInputMatchingByKey) {
  World w(cfg(2));
  Edge<Int1, int> a("a"), b("b"), out_e("out");
  auto tt = make_tt(w,
                    [](const Int1& k, int& x, int& y, std::tuple<Out<Int1, int>>& out) {
                      ttg::send<0>(k, x + y, out);
                    },
                    edges(a, b), edges(out_e), "add");
  std::map<int, int> results;
  auto sink = make_sink(w, out_e, [&](const Int1& k, int& v) { results[k.i] = v; });
  sink->set_keymap([](const Int1&) { return 0; });
  make_graph_executable(*tt);
  make_graph_executable(*sink);
  // Deliver inputs out of order and interleaved across keys.
  for (int i = 0; i < 8; ++i) tt->invoke(Int1{i}, 10 * i, i);
  w.fence();
  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(results[i], 11 * i);
}

TEST(TtgCore, TasksRunOnKeymapRank) {
  World w(cfg(4));
  Edge<Int1, int> in("in");
  std::map<int, int> ran_on;
  auto tt = make_tt(w,
                    [&](const Int1& k, int&, std::tuple<>&) { ran_on[k.i] = w.rank(); },
                    edges(in), std::tuple<>{}, "where");
  tt->set_keymap([](const Int1& k) { return k.i % 4; });
  make_graph_executable(*tt);
  for (int i = 0; i < 8; ++i) tt->invoke(Int1{i}, 0);
  w.fence();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(ran_on[i], i % 4);
}

TEST(TtgCore, RemoteSendRoundtripsThroughSerialization) {
  World w(cfg(2));
  Edge<Int1, std::vector<double>> in("in"), out_e("out");
  auto producer = make_tt(
      w,
      [](const Int1& k, std::vector<double>& v,
         std::tuple<Out<Int1, std::vector<double>>>& out) {
        ttg::send<0>(k, std::move(v), out);
      },
      edges(in), edges(out_e), "producer");
  producer->set_keymap([](const Int1&) { return 0; });
  std::vector<double> got;
  auto sink = make_sink(w, out_e, [&](const Int1&, std::vector<double>& v) { got = v; });
  sink->set_keymap([](const Int1&) { return 1; });  // forces a remote hop
  make_graph_executable(*producer);
  make_graph_executable(*sink);
  producer->invoke(Int1{0}, std::vector<double>{1.5, -2.5, 3.25});
  w.fence();
  EXPECT_EQ(got, (std::vector<double>{1.5, -2.5, 3.25}));
  EXPECT_GE(w.comm().stats().messages, 1u);
}

TEST(TtgCore, SplitmdUsedForTilesOnParsec) {
  World w(cfg(2, BackendKind::Parsec));
  Edge<Int1, Tile> in("in"), out_e("out");
  auto tt = make_tt(w,
                    [](const Int1& k, Tile& t, std::tuple<Out<Int1, Tile>>& out) {
                      ttg::send<0>(k, std::move(t), out);
                    },
                    edges(in), edges(out_e), "fwd");
  tt->set_keymap([](const Int1&) { return 0; });
  Tile got;
  auto sink = make_sink(w, out_e, [&](const Int1&, Tile& t) { got = std::move(t); });
  sink->set_keymap([](const Int1&) { return 1; });
  make_graph_executable(*tt);
  make_graph_executable(*sink);
  Tile t(4, 4);
  t(1, 2) = 7.5;
  tt->invoke(Int1{0}, std::move(t));
  w.fence();
  EXPECT_EQ(w.comm().stats().splitmd_sends, 1u);
  EXPECT_DOUBLE_EQ(got(1, 2), 7.5);
}

TEST(TtgCore, MadnessFallsBackToWholeObject) {
  World w(cfg(2, BackendKind::Madness));
  Edge<Int1, Tile> in("in"), out_e("out");
  auto tt = make_tt(w,
                    [](const Int1& k, Tile& t, std::tuple<Out<Int1, Tile>>& out) {
                      ttg::send<0>(k, std::move(t), out);
                    },
                    edges(in), edges(out_e), "fwd");
  tt->set_keymap([](const Int1&) { return 0; });
  Tile got;
  auto sink = make_sink(w, out_e, [&](const Int1&, Tile& t) { got = std::move(t); });
  sink->set_keymap([](const Int1&) { return 1; });
  make_graph_executable(*tt);
  make_graph_executable(*sink);
  Tile t(3, 3);
  t(0, 0) = -1.25;
  tt->invoke(Int1{0}, std::move(t));
  w.fence();
  EXPECT_EQ(w.comm().stats().splitmd_sends, 0u);
  EXPECT_GE(w.comm().stats().messages, 1u);
  EXPECT_DOUBLE_EQ(got(0, 0), -1.25);
}

TEST(TtgCore, OptimizedBroadcastCoalescesByRank) {
  auto run = [](bool optimized) {
    auto c = cfg(2);
    c.optimized_broadcast = optimized;
    World w(c);
    Edge<Int1, Tile> in("in"), out_e("out");
    auto tt = make_tt(w,
                      [](const Int1&, Tile& t, std::tuple<Out<Int1, Tile>>& out) {
                        // 4 keys, all owned by rank 1.
                        ttg::broadcast<0>(
                            std::vector<Int1>{{1}, {3}, {5}, {7}}, t, out);
                      },
                      edges(in), edges(out_e), "bcaster");
    tt->set_keymap([](const Int1&) { return 0; });
    int received = 0;
    auto sink = make_sink(w, out_e, [&](const Int1&, Tile&) { ++received; });
    sink->set_keymap([](const Int1&) { return 1; });
    make_graph_executable(*tt);
    make_graph_executable(*sink);
    tt->invoke(Int1{0}, Tile(4, 4));
    w.fence();
    EXPECT_EQ(received, 4);
    return w.comm().stats().splitmd_sends + w.comm().stats().messages;
  };
  EXPECT_EQ(run(true), 1u);   // one wire transfer carrying 4 task IDs
  EXPECT_EQ(run(false), 4u);  // Chameleon-style: one per dependence
}

TEST(TtgCore, MultiTerminalBroadcast) {
  World w(cfg(1));
  Edge<Int1, int> in("in"), e0("e0"), e1("e1"), e2("e2");
  auto tt = make_tt(
      w,
      [](const Int1&, int& v,
         std::tuple<Out<Int1, int>, Out<Int1, int>, Out<Int1, int>>& out) {
        // Listing 1 style: single key, single key, key list.
        ttg::broadcast<0, 1, 2>(
            std::make_tuple(Int1{0}, Int1{1}, std::vector<Int1>{{2}, {3}}), v, out);
      },
      edges(in), edges(e0, e1, e2), "multi");
  int c0 = 0, c1 = 0, c2 = 0;
  auto s0 = make_sink(w, e0, [&](const Int1&, int& v) { c0 += v; });
  auto s1 = make_sink(w, e1, [&](const Int1&, int& v) { c1 += v; });
  auto s2 = make_sink(w, e2, [&](const Int1&, int& v) { c2 += v; });
  make_graph_executable(*tt);
  make_graph_executable(*s0);
  make_graph_executable(*s1);
  make_graph_executable(*s2);
  tt->invoke(Int1{9}, 5);
  w.fence();
  EXPECT_EQ(c0, 5);
  EXPECT_EQ(c1, 5);
  EXPECT_EQ(c2, 10);  // two keys on terminal 2
}

TEST(TtgCore, StreamingReducerStaticSize) {
  World w(cfg(2));
  Edge<Int1, int> in("in"), out_e("out");
  auto tt = make_tt(w,
                    [](const Int1& k, int& sum, std::tuple<Out<Int1, int>>& out) {
                      ttg::send<0>(k, sum, out);
                    },
                    edges(in), edges(out_e), "reduce");
  tt->set_input_reducer<0>([](int& acc, int&& v) { acc += v; }, 4);
  std::map<int, int> results;
  auto sink = make_sink(w, out_e, [&](const Int1& k, int& v) { results[k.i] = v; });
  sink->set_keymap([](const Int1&) { return 0; });
  make_graph_executable(*tt);
  make_graph_executable(*sink);
  for (int key = 0; key < 3; ++key)
    for (int i = 1; i <= 4; ++i) tt->invoke(Int1{key}, i * (key + 1));
  w.fence();
  for (int key = 0; key < 3; ++key) EXPECT_EQ(results[key], 10 * (key + 1));
  EXPECT_EQ(tt->tasks_executed(), 3u);
}

TEST(TtgCore, PerKeyArgstreamSize) {
  World w(cfg(1));
  Edge<Int1, int> in("in"), out_e("out");
  auto tt = make_tt(w,
                    [](const Int1& k, int& sum, std::tuple<Out<Int1, int>>& out) {
                      ttg::send<0>(k, sum, out);
                    },
                    edges(in), edges(out_e), "reduce");
  tt->set_input_reducer<0>([](int& acc, int&& v) { acc += v; });  // unbounded
  std::map<int, int> results;
  auto sink = make_sink(w, out_e, [&](const Int1& k, int& v) { results[k.i] = v; });
  make_graph_executable(*tt);
  make_graph_executable(*sink);
  tt->set_argstream_size<0>(Int1{0}, 2);
  tt->set_argstream_size<0>(Int1{1}, 5);
  for (int i = 0; i < 2; ++i) tt->invoke(Int1{0}, 1);
  for (int i = 0; i < 5; ++i) tt->invoke(Int1{1}, 1);
  w.fence();
  EXPECT_EQ(results[0], 2);
  EXPECT_EQ(results[1], 5);
}

TEST(TtgCore, FinalizeClosesStream) {
  World w(cfg(1));
  Edge<Int1, Void> start("start");
  Edge<Int1, int> stream("stream"), out_e("out");
  // A controller task pushes 3 items then finalizes the stream.
  auto ctl = make_tt(w,
                     [](const Int1& k, Void&,
                        std::tuple<Out<Int1, int>>& out) {
                       for (int i = 1; i <= 3; ++i) ttg::send<0>(k, i, out);
                       ttg::finalize<0>(k, out);
                     },
                     edges(start), edges(stream), "ctl");
  auto red = make_tt(w,
                     [](const Int1& k, int& sum, std::tuple<Out<Int1, int>>& out) {
                       ttg::send<0>(k, sum, out);
                     },
                     edges(stream), edges(out_e), "red");
  red->set_input_reducer<0>([](int& acc, int&& v) { acc += v; });
  int result = 0;
  auto sink = make_sink(w, out_e, [&](const Int1&, int& v) { result = v; });
  make_graph_executable(*ctl);
  make_graph_executable(*red);
  make_graph_executable(*sink);
  ctl->invoke(Int1{0}, Void{});
  w.fence();
  EXPECT_EQ(result, 6);
  EXPECT_EQ(w.unfinished(), 0u);
}

TEST(TtgCore, SetSizeViaTerminal) {
  World w(cfg(1));
  Edge<Int1, Void> start("start");
  Edge<Int1, int> stream("stream"), out_e("out");
  auto ctl = make_tt(w,
                     [](const Int1& k, Void&, std::tuple<Out<Int1, int>>& out) {
                       ttg::set_size<0>(k, 2, out);
                       ttg::send<0>(k, 10, out);
                       ttg::send<0>(k, 20, out);
                     },
                     edges(start), edges(stream), "ctl");
  auto red = make_tt(w,
                     [](const Int1& k, int& sum, std::tuple<Out<Int1, int>>& out) {
                       ttg::send<0>(k, sum, out);
                     },
                     edges(stream), edges(out_e), "red");
  red->set_input_reducer<0>([](int& acc, int&& v) { acc += v; });
  int result = 0;
  auto sink = make_sink(w, out_e, [&](const Int1&, int& v) { result = v; });
  make_graph_executable(*ctl);
  make_graph_executable(*red);
  make_graph_executable(*sink);
  ctl->invoke(Int1{0}, Void{});
  w.fence();
  EXPECT_EQ(result, 30);
}

TEST(TtgCore, VoidDataPureControlFlow) {
  World w(cfg(2));
  Edge<Int2, Void> ctl("ctl");
  int fired = 0;
  auto tt = make_tt(w, [&](const Int2&, Void&, std::tuple<>&) { ++fired; },
                    edges(ctl), std::tuple<>{}, "control");
  make_graph_executable(*tt);
  for (int i = 0; i < 5; ++i) tt->invoke(Int2{i, i}, Void{});
  w.fence();
  EXPECT_EQ(fired, 5);
}

TEST(TtgCore, VoidKeyPureDataflow) {
  World w(cfg(2));
  Edge<Void, int> e("data");
  int got = 0;
  auto tt = make_tt(w, [&](const Void&, int& v, std::tuple<>&) { got = v; },
                    edges(e), std::tuple<>{}, "pure-data");
  make_graph_executable(*tt);
  tt->invoke(Void{}, 77);
  w.fence();
  EXPECT_EQ(got, 77);
}

TEST(TtgCore, ZeroInputInitiator) {
  World w(cfg(2));
  Edge<Int1, int> out_e("out");
  auto init = make_tt<Int1>(
      w, [](const Int1& k, std::tuple<Out<Int1, int>>& out) { ttg::send<0>(k, k.i, out); },
      std::tuple<>{}, edges(out_e), "init");
  int sum = 0;
  auto sink = make_sink(w, out_e, [&](const Int1&, int& v) { sum += v; });
  sink->set_keymap([](const Int1&) { return 0; });
  make_graph_executable(*init);
  make_graph_executable(*sink);
  for (int i = 0; i < 10; ++i) init->invoke(Int1{i});
  w.fence();
  EXPECT_EQ(sum, 45);
}

TEST(TtgCore, PriorityMapOrdersExecution) {
  auto c = cfg(1);
  c.machine.cores_per_node = 1;
  World w(c);
  Edge<Int1, Void> in("in");
  std::vector<int> order;
  auto tt = make_tt(w, [&](const Int1& k, Void&, std::tuple<>&) { order.push_back(k.i); },
                    edges(in), std::tuple<>{}, "prio");
  tt->set_priomap([](const Int1& k) { return k.i; });
  tt->set_costmap([](const Int1&, const Void&) { return 1.0; });
  make_graph_executable(*tt);
  for (int i = 0; i < 5; ++i) tt->invoke(Int1{i}, Void{});
  w.fence();
  // The first injected task starts immediately; the rest pop by priority.
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ((std::vector<int>{order[1], order[2], order[3], order[4]}),
            (std::vector<int>{4, 3, 2, 1}));
}

TEST(TtgCore, CostmapDeterminesMakespan) {
  World w(cfg(1));
  Edge<Int1, Void> in("in");
  auto tt = make_tt(w, [](const Int1&, Void&, std::tuple<>&) {}, edges(in),
                    std::tuple<>{}, "costly");
  tt->set_costmap([](const Int1& k, const Void&) { return k.i == 0 ? 5.0 : 1.0; });
  make_graph_executable(*tt);
  tt->invoke(Int1{0}, Void{});
  tt->invoke(Int1{1}, Void{});
  const double t = w.fence();
  EXPECT_NEAR(t, 5.0, 1e-5);  // both run in parallel on 2 workers
}

TEST(TtgCore, CopySharingStatsByBackend) {
  auto run = [](BackendKind b) {
    World w(cfg(1, b));
    Edge<Int1, Tile> in("in"), out_e("out");
    auto tt = make_tt(w,
                      [](const Int1& k, Tile& t, std::tuple<Out<Int1, Tile>>& out) {
                        ttg::send<0>(k, t, out);  // lvalue send: copy semantics
                      },
                      edges(in), edges(out_e), "copy");
    auto sink = make_sink(w, out_e, [](const Int1&, Tile&) {});
    make_graph_executable(*tt);
    make_graph_executable(*sink);
    tt->invoke(Int1{0}, Tile(16, 16));
    w.fence();
    return w.comm().stats();
  };
  // PaRSEC owns the data: a const-ref/lvalue local send is shared, not
  // copied; MADNESS pays the copy.
  EXPECT_EQ(run(BackendKind::Parsec).local_copies, 0u);
  EXPECT_GE(run(BackendKind::Madness).local_copies, 1u);
}

void trigger_duplicate_input() {
  World w(cfg(1));
  // Two-input task: deliver twice to the SAME terminal before the other
  // terminal ever fires — an unambiguous duplicate on a pending record.
  Edge<Int1, int> a("a"), b("b");
  auto tt = make_tt(w, [](const Int1&, int&, int&, std::tuple<>&) {}, edges(a, b),
                    std::tuple<>{}, "dup");
  make_graph_executable(*tt);
  Out<Int1, int> injector(&w, a.impl_ptr());
  injector.send(Int1{0}, 1);
  injector.send(Int1{0}, 2);
  w.fence();
}

TEST(TtgCoreDeath, DuplicateInputAborts) {
  // GTEST_FLAG_SET only exists in googletest >= 1.12; fall back to the
  // classic flag accessor on older releases.
#ifdef GTEST_FLAG_SET
  GTEST_FLAG_SET(death_test_style, "threadsafe");
#else
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
#endif
  EXPECT_DEATH(trigger_duplicate_input(), "duplicate input");
}

TEST(TtgCoreDeath, FenceRequiresExecutable) {
  World w(cfg(1));
  Edge<Int1, int> in("in");
  auto tt = make_tt(w, [](const Int1&, int&, std::tuple<>&) {}, edges(in),
                    std::tuple<>{}, "nonexec");
  EXPECT_THROW(w.fence(), support::ApiError);
}

TEST(TtgCore, UnfinishedDetectsMissingInput) {
  World w(cfg(1));
  Edge<Int1, int> a("a"), b("b");
  auto tt = make_tt(w, [](const Int1&, int&, int&, std::tuple<>&) {}, edges(a, b),
                    std::tuple<>{}, "starved");
  make_graph_executable(*tt);
  // Feed only one of two inputs: the record must stay pending.
  w.run_as(tt->keymap(Int1{0}), [&] {});
  tt->invoke(Int1{0}, 1, 2);  // complete task fires...
  w.fence();
  EXPECT_EQ(w.unfinished(), 0u);
  // ...but a half-delivered one does not.
  Edge<Int1, int> c("c"), d("d");
  auto tt2 = make_tt(w, [](const Int1&, int&, int&, std::tuple<>&) {}, edges(c, d),
                     std::tuple<>{}, "starved2");
  make_graph_executable(*tt2);
  // Deliver to only one terminal by sending through an Out bound to c.
  Out<Int1, int> injector(&w, c.impl_ptr());
  injector.send(Int1{0}, 5);
  w.fence();
  EXPECT_EQ(w.unfinished(), 1u);
}

TEST(TtgCore, TaskIdsOfDifferentTypesAcrossTerminals) {
  // TRSM-style: Int2-keyed task emits to an Int3-keyed consumer.
  World w(cfg(2));
  Edge<Int2, int> in("in");
  Edge<Int3, int> out_e("out");
  auto tt = make_tt(w,
                    [](const Int2& k, int& v, std::tuple<Out<Int3, int>>& out) {
                      ttg::send<0>(Int3{k.i, k.j, v}, v, out);
                    },
                    edges(in), edges(out_e), "rekey");
  Int3 got{};
  auto sink = make_sink(w, out_e, [&](const Int3& k, int&) { got = k; });
  make_graph_executable(*tt);
  make_graph_executable(*sink);
  tt->invoke(Int2{3, 4}, 5);
  w.fence();
  EXPECT_EQ(got, (Int3{3, 4, 5}));
}

}  // namespace
