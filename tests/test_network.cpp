// Unit tests for the simulated interconnect: protocol selection, timing
// composition, NIC serialization, bisection contention, and statistics.
#include <gtest/gtest.h>

#include "net/network.hpp"

namespace {

using namespace ttg;
using net::Network;

sim::MachineModel test_machine() {
  sim::MachineModel m;
  m.name = "test";
  m.cores_per_node = 4;
  m.core_gflops = 10;
  m.net_latency = 1e-6;
  m.nic_bw = 1e9;  // 1 GB/s: 1 KB = 1 us wire time
  m.bisection_factor = 1.0;
  m.eager_threshold = 4096;
  return m;
}

TEST(Network, EagerDeliveryTime) {
  sim::Engine e;
  Network net(e, test_machine(), 4);  // 0 -> 1 stays within one half
  double delivered = -1;
  net.send(0, 1, 1000, [&] { delivered = e.now(); });
  e.run();
  // sender NIC (1us) + latency (1us) + recv NIC (1us); no bisection charge.
  EXPECT_NEAR(delivered, 3e-6, 1e-12);
  EXPECT_EQ(net.stats().messages, 1u);
  EXPECT_EQ(net.stats().bytes, 1000u);
}

TEST(Network, CrossHalfTrafficAlsoPaysTheFabric) {
  sim::Engine e;
  Network net(e, test_machine(), 4);  // halves {0,1} and {2,3}
  double delivered = -1;
  net.send(0, 2, 1000, [&] { delivered = e.now(); });
  e.run();
  // + bytes / (bisection_factor * (R/2) * nic_bw) = 0.5us fabric stage.
  EXPECT_NEAR(delivered, 3.5e-6, 1e-12);
}

TEST(Network, RendezvousAddsHandshake) {
  sim::Engine e;
  Network net(e, test_machine(), 2);
  double eager_t = -1, rndv_t = -1;
  {
    sim::Engine e2;
    Network n2(e2, test_machine(), 2);
    n2.send_eager(0, 1, 100000, [&] { eager_t = e2.now(); });
    e2.run();
  }
  net.send_rendezvous(0, 1, 100000, [&] { rndv_t = e.now(); });
  e.run();
  EXPECT_GT(rndv_t, eager_t);  // RTS/CTS cost
  EXPECT_EQ(net.stats().control_msgs, 2u);
}

TEST(Network, SendPicksProtocolByThreshold) {
  sim::Engine e;
  Network net(e, test_machine(), 2);
  net.send(0, 1, 100, [] {});     // below threshold: eager, no control msgs
  e.run();
  EXPECT_EQ(net.stats().control_msgs, 0u);
  net.send(0, 1, 100000, [] {});  // above: rendezvous
  e.run();
  EXPECT_EQ(net.stats().control_msgs, 2u);
}

TEST(Network, SenderNicSerializesConcurrentSends) {
  sim::Engine e;
  Network net(e, test_machine(), 6);  // halves {0,1,2} / {3,4,5}
  double t1 = -1, t2 = -1;
  // Two 1 KB messages from rank 0 at the same instant: the second waits
  // for the first to clear the injection port.
  net.send_eager(0, 1, 1000, [&] { t1 = e.now(); });
  net.send_eager(0, 2, 1000, [&] { t2 = e.now(); });
  e.run();
  EXPECT_NEAR(t1, 3e-6, 1e-12);
  EXPECT_NEAR(t2, 4e-6, 1e-12);  // +1us queued behind the first on the NIC
}

TEST(Network, ReceiverNicModelsIncast) {
  sim::Engine e;
  Network net(e, test_machine(), 6);
  double t1 = -1, t2 = -1;
  net.send_eager(1, 0, 1000, [&] { t1 = e.now(); });
  net.send_eager(2, 0, 1000, [&] { t2 = e.now(); });
  e.run();
  // Both payloads arrive together but drain through rank 0's single
  // receive port one after the other.
  EXPECT_NEAR(t1, 3e-6, 1e-12);
  EXPECT_NEAR(t2, 4e-6, 1e-12);
}

TEST(Network, RmaGetFetchesAndNotifies) {
  sim::Engine e;
  Network net(e, test_machine(), 2);
  double got = -1, released = -1;
  net.rma_get(0, 1, 10000, [&] { got = e.now(); }, [&] { released = e.now(); });
  e.run();
  EXPECT_GT(got, 0.0);
  EXPECT_GT(released, got);  // completion notification follows the data
  EXPECT_EQ(net.stats().rma_gets, 1u);
}

TEST(Network, BisectionChargesCrossTrafficOnly) {
  sim::Engine e;
  auto m = test_machine();
  m.bisection_factor = 0.001;  // make the cut extremely narrow
  Network net(e, m, 4);        // halves {0,1} and {2,3}
  double same_half = -1, cross_half = -1;
  {
    sim::Engine e2;
    Network n2(e2, m, 4);
    n2.send_eager(0, 1, 1000, [&] { same_half = e2.now(); });
    e2.run();
  }
  net.send_eager(0, 2, 1000, [&] { cross_half = e.now(); });
  e.run();
  EXPECT_GT(cross_half, same_half * 10);  // throttled by the narrow cut
}

TEST(Network, SingleRankHasNoBisection) {
  sim::Engine e;
  Network net(e, test_machine(), 1);
  EXPECT_EQ(net.nranks(), 1);
}

TEST(Network, NicBusyAccounting) {
  sim::Engine e;
  Network net(e, test_machine(), 2);
  net.send_eager(0, 1, 2000, [] {});
  e.run();
  EXPECT_NEAR(net.nic_busy(0), 2e-6, 1e-12);
  EXPECT_NEAR(net.nic_busy(1), 0.0, 1e-12);  // recv NIC tracked separately
}

}  // namespace
