// Integration tests of the Cholesky implementations: TTG on both backends,
// the DPLASMA-like PTG executor, the BSP comparators, and ghost-mode runs.
#include <gtest/gtest.h>

#include "apps/cholesky/cholesky_ttg.hpp"
#include "baselines/bsp_cholesky.hpp"
#include "baselines/chameleon_like.hpp"
#include "baselines/dplasma_like.hpp"
#include "linalg/kernels.hpp"
#include "ttg/ttg.hpp"

namespace {

using namespace ttg;
using linalg::TiledMatrix;

struct Case {
  int nranks;
  int n;
  int bs;
  rt::BackendKind backend;
};

class CholeskyCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(CholeskyCorrectness, MatchesDenseReference) {
  const auto p = GetParam();
  support::Rng rng(42);
  auto a = linalg::random_spd(rng, p.n, p.bs);
  auto ref = linalg::dense_cholesky(a.to_dense());

  rt::WorldConfig cfg;
  cfg.machine = sim::hawk();
  cfg.nranks = p.nranks;
  cfg.backend = p.backend;
  rt::World world(cfg);
  auto res = apps::cholesky::run(world, a);
  EXPECT_LT(res.matrix.to_dense().max_abs_diff(ref), 1e-9);
  EXPECT_GT(res.makespan, 0.0);
  EXPECT_GT(res.gflops, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CholeskyCorrectness,
    ::testing::Values(Case{1, 64, 16, rt::BackendKind::Parsec},
                      Case{1, 64, 64, rt::BackendKind::Parsec},  // single tile
                      Case{2, 96, 32, rt::BackendKind::Parsec},
                      Case{4, 96, 16, rt::BackendKind::Parsec},
                      Case{7, 100, 24, rt::BackendKind::Parsec},  // ragged + odd grid
                      Case{4, 96, 16, rt::BackendKind::Madness},
                      Case{2, 80, 32, rt::BackendKind::Madness}));

TEST(Cholesky, TaskCountMatchesAlgorithm) {
  support::Rng rng(1);
  const int nt = 5;
  auto a = linalg::random_spd(rng, nt * 16, 16);
  rt::WorldConfig cfg;
  cfg.nranks = 2;
  rt::World world(cfg);
  auto res = apps::cholesky::run(world, a);
  // nt potrf + nt(nt-1)/2 trsm + nt(nt-1)/2 syrk + nt(nt-1)(nt-2)/6 gemm.
  const std::uint64_t expect = nt + nt * (nt - 1) / 2 * 2 + nt * (nt - 1) * (nt - 2) / 6;
  EXPECT_EQ(res.tasks, expect);
}

TEST(Cholesky, GhostRunHasSameTaskCountAsReal) {
  support::Rng rng(2);
  auto real = linalg::random_spd(rng, 96, 32);
  auto ghost = linalg::ghost_matrix(96, 32);
  rt::WorldConfig cfg;
  cfg.nranks = 4;
  std::uint64_t tr, tg;
  {
    rt::World w(cfg);
    tr = apps::cholesky::run(w, real).tasks;
  }
  {
    rt::World w(cfg);
    apps::cholesky::Options opt;
    opt.collect = false;
    tg = apps::cholesky::run(w, ghost, opt).tasks;
  }
  EXPECT_EQ(tr, tg);
}

TEST(Cholesky, GhostMakespanMatchesRealMakespan) {
  // The cost model only depends on tile dimensions, so ghost and real runs
  // must produce identical virtual timings.
  support::Rng rng(3);
  auto real = linalg::random_spd(rng, 96, 32);
  auto ghost = linalg::ghost_matrix(96, 32);
  rt::WorldConfig cfg;
  cfg.nranks = 4;
  double t_real, t_ghost;
  {
    rt::World w(cfg);
    t_real = apps::cholesky::run(w, real).makespan;
  }
  {
    rt::World w(cfg);
    apps::cholesky::Options opt;
    opt.collect = false;
    t_ghost = apps::cholesky::run(w, ghost, opt).makespan;
  }
  EXPECT_NEAR(t_real, t_ghost, 1e-12);
}

TEST(Dplasma, MatchesDenseReference) {
  support::Rng rng(4);
  auto a = linalg::random_spd(rng, 96, 24);
  auto ref = linalg::dense_cholesky(a.to_dense());
  auto res = baselines::run_dplasma_cholesky(sim::hawk(), 4, a, /*collect=*/true);
  EXPECT_LT(res.matrix.to_dense().max_abs_diff(ref), 1e-9);
}

TEST(Dplasma, ComparableToTtgParsec) {
  auto a = linalg::ghost_matrix(512 * 8, 512);
  rt::WorldConfig cfg;
  cfg.nranks = 4;
  rt::World w(cfg);
  apps::cholesky::Options opt;
  opt.collect = false;
  const double ttg_t = apps::cholesky::run(w, a, opt).makespan;
  const double dpl_t = baselines::run_dplasma_cholesky(sim::hawk(), 4, a).makespan;
  // The paper's Fig. 5/6: DPLASMA and TTG/PaRSEC nearly overlap.
  EXPECT_LT(std::abs(ttg_t - dpl_t) / ttg_t, 0.35);
}

TEST(BspBaselines, SlateNoSlowerThanScalapack) {
  for (int nodes : {1, 4, 16}) {
    auto sc = baselines::run_bsp_cholesky(sim::hawk(), nodes, 512 * 16, 512,
                                          baselines::BspVariant::ScaLapack);
    auto sl = baselines::run_bsp_cholesky(sim::hawk(), nodes, 512 * 16, 512,
                                          baselines::BspVariant::Slate);
    EXPECT_LE(sl.makespan, sc.makespan * 1.0001) << "nodes=" << nodes;
  }
}

TEST(BspBaselines, TaskBasedBeatsBspAtScale) {
  // The headline separation of Fig. 5: at multiple nodes, TTG and DPLASMA
  // clearly outperform the no-lookahead BSP libraries.
  const int nodes = 16;
  auto ghost = linalg::ghost_matrix(512 * 24, 512);
  rt::WorldConfig cfg;
  cfg.nranks = nodes;
  rt::World w(cfg);
  apps::cholesky::Options opt;
  opt.collect = false;
  const double ttg_t = apps::cholesky::run(w, ghost, opt).makespan;
  const auto sc = baselines::run_bsp_cholesky(sim::hawk(), nodes, 512 * 24, 512,
                                              baselines::BspVariant::ScaLapack);
  EXPECT_LT(ttg_t, sc.makespan);
}

TEST(Chameleon, CorrectButTrailsTtg) {
  support::Rng rng(5);
  auto a = linalg::random_spd(rng, 96, 24);
  auto ref = linalg::dense_cholesky(a.to_dense());
  {
    rt::World w(baselines::chameleon_profile(sim::hawk(), 4));
    auto res = apps::cholesky::run(w, a);
    EXPECT_LT(res.matrix.to_dense().max_abs_diff(ref), 1e-9);
  }
  // Performance: Chameleon slightly trails TTG/PaRSEC (ghost, larger run).
  auto ghost = linalg::ghost_matrix(512 * 16, 512);
  apps::cholesky::Options opt;
  opt.collect = false;
  rt::WorldConfig cfg;
  cfg.nranks = 8;
  rt::World wt(cfg);
  const double ttg_t = apps::cholesky::run(wt, ghost, opt).makespan;
  const double ch_t =
      baselines::run_chameleon_cholesky(sim::hawk(), 8, ghost).makespan;
  EXPECT_GT(ch_t, ttg_t);
}

TEST(Cholesky, PrioritiesHelpOrAreNeutral) {
  auto ghost = linalg::ghost_matrix(512 * 12, 512);
  apps::cholesky::Options with, without;
  with.collect = without.collect = false;
  without.priorities = false;
  rt::WorldConfig cfg;
  cfg.nranks = 4;
  double t_with, t_without;
  {
    rt::World w(cfg);
    t_with = apps::cholesky::run(w, ghost, with).makespan;
  }
  {
    rt::World w(cfg);
    t_without = apps::cholesky::run(w, ghost, without).makespan;
  }
  EXPECT_LE(t_with, t_without * 1.05);
}

TEST(Cholesky, FlopCountFormula) {
  EXPECT_NEAR(apps::cholesky::flop_count(300), 9.0e6, 1.0);
}

}  // namespace
