// Tests for the structured observability subsystem: causality graph and
// critical-path analysis, Chrome-trace export (parsed back with the
// in-repo JSON parser), per-rank counter conservation, backend
// distinction (MADNESS copies vs PaRSEC splitmd), and the scheduler
// semantics the tracer makes observable (priority-first FIFO tie-break,
// charge() accounting).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/bspmm/bspmm_ttg.hpp"
#include "apps/cholesky/cholesky_ttg.hpp"
#include "sparse/yukawa_gen.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "ttg/ttg.hpp"

namespace {

using namespace ttg;
namespace json = support::json;

rt::WorldConfig tiny_world(rt::BackendKind b = rt::BackendKind::Parsec,
                           int nranks = 2, int workers = 2) {
  rt::WorldConfig cfg;
  cfg.machine = sim::hawk();
  cfg.machine.cores_per_node = workers;
  cfg.nranks = nranks;
  cfg.backend = b;
  return cfg;
}

/// A traced tiled-Cholesky run on ghost tiles (no numerics, full comm).
/// When `keep` is given, the caller owns the returned World.
rt::CommCounters traced_potrf(rt::BackendKind b, int nranks, int n, int bs,
                              std::string* chrome_json = nullptr,
                              rt::World** keep = nullptr) {
  auto ghost = linalg::ghost_matrix(n, bs);
  auto* world = new rt::World(tiny_world(b, nranks));
  world->enable_tracing();
  apps::cholesky::Options opt;
  opt.collect = false;
  apps::cholesky::run(*world, ghost, opt);
  auto totals = world->tracer().totals();
  if (chrome_json != nullptr) *chrome_json = world->tracer().chrome_trace_json();
  if (keep != nullptr) {
    *keep = world;
  } else {
    delete world;
  }
  return totals;
}

rt::CommCounters traced_bspmm(rt::BackendKind b, int nranks) {
  sparse::YukawaParams p;
  p.natoms = 40;
  p.max_tile = 64;
  p.threshold = 1e-6;
  p.box = 120.0;
  p.ghost = true;
  auto a = sparse::yukawa_matrix(p);
  rt::World world(tiny_world(b, nranks));
  world.enable_tracing();
  apps::bspmm::Options opt;
  opt.collect = false;
  apps::bspmm::run(world, a, a, opt);
  return world.tracer().totals();
}

// --- critical path ------------------------------------------------------

TEST(CriticalPath, DiamondHasExactLength) {
  // A -> {B, C} -> D on one rank with zero runtime overhead: every span is
  // exactly its costmap value, so the longest chain is A + C + D.
  auto cfg = tiny_world(rt::BackendKind::Parsec, /*nranks=*/1, /*workers=*/2);
  cfg.task_overhead_override = 0.0;
  rt::World world(cfg);
  world.enable_tracing();

  Edge<Int1, double> in("in"), ab("ab"), ac("ac"), bd("bd"), cd("cd");
  auto a = make_tt(
      world,
      [](const Int1& k, double& v,
         std::tuple<Out<Int1, double>, Out<Int1, double>>& out) {
        ttg::send<0>(k, double(v), out);
        ttg::send<1>(k, double(v), out);
      },
      edges(in), edges(ab, ac), "A");
  auto b = make_tt(
      world,
      [](const Int1& k, double& v, std::tuple<Out<Int1, double>>& out) {
        ttg::send<0>(k, double(v), out);
      },
      edges(ab), edges(bd), "B");
  auto c = make_tt(
      world,
      [](const Int1& k, double& v, std::tuple<Out<Int1, double>>& out) {
        ttg::send<0>(k, double(v), out);
      },
      edges(ac), edges(cd), "C");
  auto d = make_tt(
      world, [](const Int1&, double&, double&, std::tuple<>&) {},
      edges(bd, cd), std::tuple<>{}, "D");

  a->set_costmap([](const Int1&, const double&) { return 1.0; });
  b->set_costmap([](const Int1&, const double&) { return 2.0; });
  c->set_costmap([](const Int1&, const double&) { return 5.0; });
  d->set_costmap([](const Int1&, const double&, const double&) { return 3.0; });

  make_graph_executable(*a);
  make_graph_executable(*b);
  make_graph_executable(*c);
  make_graph_executable(*d);
  a->invoke(Int1{0}, 1.0);
  const double makespan = world.fence();

  auto cp = world.tracer().critical_path();
  EXPECT_DOUBLE_EQ(cp.length, 9.0);  // A(1) + C(5) + D(3)
  EXPECT_DOUBLE_EQ(makespan, 9.0);
  ASSERT_EQ(cp.hops.size(), 3u);
  EXPECT_EQ(cp.hops[0].label, "A");
  EXPECT_EQ(cp.hops[1].label, "C");
  EXPECT_EQ(cp.hops[2].label, "D");
  for (const auto& h : cp.hops) {
    EXPECT_EQ(h.kind, rt::CriticalHop::Kind::Task);
  }
  // The report renders the same chain.
  const auto report = world.tracer().critical_path_report();
  EXPECT_NE(report.find("critical path"), std::string::npos);
  EXPECT_NE(report.find("C"), std::string::npos);
}

TEST(CriticalPath, RemoteChainContainsMessageHop) {
  // A on rank 0 feeds B on rank 1: the longest chain must thread through
  // the message, task -> msg -> task.
  auto cfg = tiny_world(rt::BackendKind::Parsec, /*nranks=*/2, /*workers=*/1);
  rt::World world(cfg);
  world.enable_tracing();

  Edge<Int1, double> in("in"), ab("ab");
  auto a = make_tt(
      world,
      [](const Int1& k, double& v, std::tuple<Out<Int1, double>>& out) {
        ttg::send<0>(k, double(v), out);
      },
      edges(in), edges(ab), "A");
  auto b = make_tt(world, [](const Int1&, double&, std::tuple<>&) {}, edges(ab),
                   std::tuple<>{}, "B");
  a->set_keymap([](const Int1&) { return 0; });
  b->set_keymap([](const Int1&) { return 1; });
  a->set_costmap([](const Int1&, const double&) { return 1e-6; });
  b->set_costmap([](const Int1&, const double&) { return 1e-6; });
  make_graph_executable(*a);
  make_graph_executable(*b);
  a->invoke(Int1{0}, 42.0);
  const double makespan = world.fence();

  auto cp = world.tracer().critical_path();
  ASSERT_EQ(cp.hops.size(), 3u);
  EXPECT_EQ(cp.hops[0].label, "A");
  EXPECT_EQ(cp.hops[0].kind, rt::CriticalHop::Kind::Task);
  EXPECT_EQ(cp.hops[1].kind, rt::CriticalHop::Kind::Message);
  EXPECT_EQ(cp.hops[1].rank, 1);  // message hop reports the destination
  EXPECT_EQ(cp.hops[2].label, "B");
  EXPECT_EQ(cp.hops[2].rank, 1);
  EXPECT_GT(cp.hops[1].duration, 0.0);
  EXPECT_LE(cp.length, makespan + 1e-12);

  // The message node is the task's recorded predecessor.
  ASSERT_EQ(world.tracer().messages().size(), 1u);
  const auto& msg = world.tracer().messages().front();
  EXPECT_EQ(msg.edge, "B");
  EXPECT_EQ(msg.src, 0);
  EXPECT_EQ(msg.dst, 1);
  EXPECT_GT(msg.bytes, 0u);
  EXPECT_GE(msg.recv_time, msg.send_time);
}

// --- Chrome-trace export ------------------------------------------------

TEST(ChromeTrace, ExportParsesBackAndIsWellFormed) {
  std::string text;
  traced_potrf(rt::BackendKind::Parsec, 2, 256, 64, &text);

  const json::Value doc = json::parse(text);
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_GT(events.size(), 0u);

  std::size_t spans = 0, metadata = 0;
  bool saw_potrf = false;
  for (const auto& e : events) {
    const std::string& ph = e.at("ph").as_string();
    EXPECT_TRUE(e.has("pid"));
    EXPECT_TRUE(e.has("tid"));
    EXPECT_TRUE(e.has("name"));
    if (ph == "X") {
      ++spans;
      EXPECT_GE(e.at("dur").as_number(), 0.0);
      EXPECT_GE(e.at("ts").as_number(), 0.0);
      if (e.at("name").as_string() == "POTRF") saw_potrf = true;
    } else if (ph == "M") {
      ++metadata;
    }
  }
  EXPECT_GT(spans, 0u);
  EXPECT_GT(metadata, 0u);  // process/thread naming for Perfetto
  EXPECT_TRUE(saw_potrf);   // template names survive into the trace
}

TEST(ChromeTrace, FileRoundTrip) {
  rt::World* world = nullptr;
  traced_potrf(rt::BackendKind::Parsec, 2, 128, 64, nullptr, &world);
  ASSERT_NE(world, nullptr);

  const std::string path = "/tmp/ttg_test_trace_roundtrip.json";
  world->tracer().write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), world->tracer().chrome_trace_json());
  const json::Value doc = json::parse(ss.str());
  EXPECT_GT(doc.at("traceEvents").size(), 0u);
  std::remove(path.c_str());
  delete world;
}

TEST(ChromeTrace, Fig12BinaryTraceRoundTrips) {
  // Acceptance: run the actual fig12_bspmm binary with --trace and parse
  // the Chrome-trace files it writes (one per traced configuration).
  const std::string stem = "/tmp/ttg_test_fig12_trace";
  const std::string cmd = std::string(TTG_BENCH_DIR) +
                          "/fig12_bspmm --natoms 40 --trace " + stem +
                          ".json > /dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0);

  for (const char* label : {"parsec-8nodes", "madness-8nodes"}) {
    const std::string path = stem + "." + label + ".json";
    SCOPED_TRACE(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const json::Value doc = json::parse(ss.str());
    const auto& events = doc.at("traceEvents").as_array();
    ASSERT_GT(events.size(), 0u);
    bool saw_multiply = false;
    for (const auto& e : events) {
      if (e.at("ph").as_string() == "X" &&
          e.at("name").as_string() == "MultiplyAdd") {
        saw_multiply = true;
        break;
      }
    }
    EXPECT_TRUE(saw_multiply);  // the Fig. 10 GEMM template is on the tracks
  }
  // All twelve configuration files, not just the two checked in depth.
  for (const char* nodes : {"8", "16", "32", "64", "128", "256"}) {
    for (const char* backend : {"parsec", "madness"}) {
      const std::string path =
          stem + "." + backend + "-" + nodes + "nodes.json";
      std::ifstream in(path);
      EXPECT_TRUE(in.good()) << path;
      in.close();
      std::remove(path.c_str());
    }
  }
}

TEST(ChromeTrace, DeterministicAcrossIdenticalRuns) {
  // The virtual clock is deterministic, so two identical runs must export
  // byte-identical traces.
  std::string first, second;
  traced_potrf(rt::BackendKind::Madness, 2, 256, 64, &first);
  traced_potrf(rt::BackendKind::Madness, 2, 256, 64, &second);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// --- counter conservation ----------------------------------------------

TEST(Conservation, PotrfBytesSentEqualReceived) {
  for (auto b : {rt::BackendKind::Parsec, rt::BackendKind::Madness}) {
    auto t = traced_potrf(b, 4, 512, 64);
    SCOPED_TRACE(rt::to_string(b));
    EXPECT_GT(t.msg_sends, 0u);
    EXPECT_EQ(t.msg_sends, t.msg_recvs);
    EXPECT_GT(t.bytes_sent, 0u);
    EXPECT_EQ(t.bytes_sent, t.bytes_received);
  }
}

TEST(Conservation, BspmmBytesSentEqualReceived) {
  for (auto b : {rt::BackendKind::Parsec, rt::BackendKind::Madness}) {
    auto t = traced_bspmm(b, 4);
    SCOPED_TRACE(rt::to_string(b));
    EXPECT_GT(t.msg_sends, 0u);
    EXPECT_EQ(t.msg_sends, t.msg_recvs);
    EXPECT_GT(t.bytes_sent, 0u);
    EXPECT_EQ(t.bytes_sent, t.bytes_received);
  }
}

// --- backend distinction ------------------------------------------------

TEST(Backends, MadnessSerializesMoreThanParsecSplitmd) {
  // Section II-C/II-D: PaRSEC ships contiguous payloads through the
  // split-metadata RMA path (no staging copies); MADNESS serializes the
  // whole object on both sides. Same workload, same message count — the
  // copy counters must tell the backends apart.
  auto parsec = traced_bspmm(rt::BackendKind::Parsec, 4);
  auto madness = traced_bspmm(rt::BackendKind::Madness, 4);

  EXPECT_EQ(parsec.msg_sends, madness.msg_sends);
  EXPECT_GT(parsec.splitmd_sends, 0u);
  EXPECT_EQ(madness.splitmd_sends, 0u);
  EXPECT_GT(madness.whole_object_sends, parsec.whole_object_sends);
  // MADNESS pays >= 1 more serialization copy than PaRSEC for the run
  // (in fact one more per splitmd-eligible message).
  EXPECT_GE(madness.serialization_copies, parsec.serialization_copies + 1);
}

TEST(Backends, ParsecRecordsRmaGets) {
  rt::World* world = nullptr;
  auto t = traced_potrf(rt::BackendKind::Parsec, 4, 512, 64, nullptr, &world);
  ASSERT_NE(world, nullptr);
  EXPECT_GT(t.rma_gets, 0u);
  EXPECT_GT(t.rma_latency_total, 0.0);
  EXPECT_GT(t.rma_latency_max, 0.0);
  ASSERT_FALSE(world->tracer().rma_events().empty());
  for (const auto& r : world->tracer().rma_events()) {
    EXPECT_GE(r.latency(), 0.0);
    EXPECT_GT(r.bytes, 0u);
  }
  delete world;
}

TEST(Backends, MadnessRecordsServerQueueing) {
  rt::World* world = nullptr;
  auto t = traced_potrf(rt::BackendKind::Madness, 4, 512, 64, nullptr, &world);
  ASSERT_NE(world, nullptr);
  EXPECT_EQ(t.rma_gets, 0u);  // no RMA data plane in the MADNESS backend
  EXPECT_GT(t.server_busy, 0.0);
  ASSERT_FALSE(world->tracer().server_events().empty());
  for (const auto& s : world->tracer().server_events()) {
    EXPECT_GE(s.wait, 0.0);
    EXPECT_GT(s.service, 0.0);
  }
  delete world;
}

// --- wire occupancy -----------------------------------------------------

TEST(Wire, TransfersAreRecordedWithPositiveDuration) {
  rt::World* world = nullptr;
  traced_potrf(rt::BackendKind::Parsec, 4, 512, 64, nullptr, &world);
  ASSERT_NE(world, nullptr);
  ASSERT_FALSE(world->tracer().wire_events().empty());
  for (const auto& wv : world->tracer().wire_events()) {
    EXPECT_NE(wv.src, wv.dst);
    EXPECT_GT(wv.bytes, 0u);
    EXPECT_GT(wv.end, wv.start);
  }
  delete world;
}

// --- scheduler semantics, asserted through tracer counters --------------

TEST(SchedulerSemantics, PriorityFirstThenFifoTieBreak) {
  auto cfg = tiny_world(rt::BackendKind::Parsec, 1, /*workers=*/1);
  rt::World w(cfg);
  w.enable_tracing();
  // A blocker occupies the single worker so the rest queue up; the queue
  // must pop by priority, FIFO among equals.
  w.scheduler(0).submit(0, 1.0, "blocker", [] {});
  w.scheduler(0).submit(1, 1.0, "low-first", [] {});
  w.scheduler(0).submit(1, 1.0, "low-second", [] {});
  w.scheduler(0).submit(2, 1.0, "high", [] {});
  w.fence();

  const auto& rec = w.tracer().records();
  ASSERT_EQ(rec.size(), 4u);
  auto start_of = [&](const std::string& name) {
    for (const auto& r : rec) {
      if (r.name == name) return r.start;
    }
    ADD_FAILURE() << "no task named " << name;
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(start_of("blocker"), 0.0);
  EXPECT_DOUBLE_EQ(start_of("high"), 1.0);        // highest priority first
  EXPECT_DOUBLE_EQ(start_of("low-first"), 2.0);   // then FIFO among equals
  EXPECT_DOUBLE_EQ(start_of("low-second"), 3.0);

  // exec_seq mirrors the execution order.
  auto seq_of = [&](const std::string& name) {
    for (const auto& r : rec) {
      if (r.name == name) return r.exec_seq;
    }
    return std::uint64_t{0};
  };
  EXPECT_LT(seq_of("blocker"), seq_of("high"));
  EXPECT_LT(seq_of("high"), seq_of("low-first"));
  EXPECT_LT(seq_of("low-first"), seq_of("low-second"));
}

TEST(SchedulerSemantics, ChargeExtendsSpanAndIsCounted) {
  auto cfg = tiny_world(rt::BackendKind::Parsec, 1, /*workers=*/1);
  rt::World w(cfg);
  w.enable_tracing();
  w.scheduler(0).submit(0, 1.0, "worker-task",
                        [&] { w.scheduler(0).charge(0.25); });
  w.scheduler(0).submit(0, 1.0, "follower", [] {});
  const double makespan = w.fence();

  const auto& rec = w.tracer().records();
  ASSERT_EQ(rec.size(), 2u);
  EXPECT_DOUBLE_EQ(rec[0].end - rec[0].start, 1.25);
  // The worker stays occupied through the charge: the follower cannot
  // start before 1.25.
  EXPECT_DOUBLE_EQ(rec[1].start, 1.25);
  EXPECT_DOUBLE_EQ(makespan, 2.25);
  EXPECT_DOUBLE_EQ(w.tracer().rank_counters(0).charged_cpu, 0.25);
  EXPECT_DOUBLE_EQ(w.tracer().totals().charged_cpu, 0.25);
}

TEST(SchedulerSemantics, WorkerIdsStayWithinRankGeometry) {
  auto cfg = tiny_world(rt::BackendKind::Parsec, 1, /*workers=*/2);
  rt::World w(cfg);
  w.enable_tracing();
  for (int i = 0; i < 6; ++i) {
    w.scheduler(0).submit(0, 1.0, "t", [] {});
  }
  w.fence();
  bool saw_w0 = false, saw_w1 = false;
  for (const auto& r : w.tracer().records()) {
    ASSERT_GE(r.worker, 0);
    ASSERT_LT(r.worker, 2);
    saw_w0 |= r.worker == 0;
    saw_w1 |= r.worker == 1;
  }
  EXPECT_TRUE(saw_w0);
  EXPECT_TRUE(saw_w1);  // 6 unit tasks over 2 workers use both
}

// --- reports render -----------------------------------------------------

TEST(Reports, BreakdownTableCoversAllRanks) {
  rt::World* world = nullptr;
  traced_potrf(rt::BackendKind::Parsec, 4, 256, 64, nullptr, &world);
  ASSERT_NE(world, nullptr);
  const auto table = world->tracer().breakdown_table(world->engine().now());
  const std::string text = table.str();
  for (const char* col : {"rank", "busy[s]", "idle[s]", "sends", "recvs"}) {
    EXPECT_NE(text.find(col), std::string::npos) << col;
  }
  delete world;
}

// --- JSON parser (support layer) ---------------------------------------

TEST(Json, ParsesScalarsContainersAndEscapes) {
  const auto v = json::parse(
      R"({"a": [1, 2.5, -3e2], "s": "q\"\\\nA", "t": true, "n": null})");
  EXPECT_DOUBLE_EQ(v.at("a").at(std::size_t{0}).as_number(), 1.0);
  EXPECT_DOUBLE_EQ(v.at("a").at(std::size_t{1}).as_number(), 2.5);
  EXPECT_DOUBLE_EQ(v.at("a").at(std::size_t{2}).as_number(), -300.0);
  EXPECT_EQ(v.at("s").as_string(), "q\"\\\nA");
  EXPECT_TRUE(v.at("t").as_bool());
  EXPECT_TRUE(v.at("n").is_null());
  EXPECT_FALSE(v.has("missing"));
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), support::ApiError);
  EXPECT_THROW(json::parse("[1, ]"), support::ApiError);
  EXPECT_THROW(json::parse("{\"a\": 1} trailing"), support::ApiError);
  EXPECT_THROW(json::parse("\"unterminated"), support::ApiError);
}

}  // namespace
