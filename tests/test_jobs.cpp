// Multi-tenant serving mode: seeded multi-job interleaving stress tests
// (determinism, per-job correctness and isolation), graph-instantiation
// cache semantics, fairness/admission control, and the bit-identity of the
// serving path with the historical single-DAG path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/cholesky/cholesky_ttg.hpp"
#include "apps/serve/job_graphs.hpp"
#include "linalg/matrix_gen.hpp"
#include "runtime/world.hpp"
#include "support/rng.hpp"

namespace {

using namespace ttg;
using rt::BackendKind;
using rt::GraphKey;
using rt::World;
using rt::WorldConfig;
using apps::serve::JobGraph;
using apps::serve::ResultMap;

// Small mixed workload (kept tiny: this suite also runs under ASan/UBSan).
std::vector<GraphKey> stress_kinds() {
  return {
      GraphKey{"potrf", {384, 128, 0, 0}},
      GraphKey{"bspmm", {3, 32, 40, 0}},
      GraphKey{"fw", {256, 128, 0, 0}},
  };
}

std::uint64_t job_seed(std::uint64_t base, int i) {
  return base + static_cast<std::uint64_t>(i) * 7919ULL;
}

struct StreamOutcome {
  double makespan = 0.0;
  std::vector<double> latencies;           ///< by job index
  std::vector<std::uint64_t> job_traffic;  ///< messages + splitmd per job
  std::vector<ResultMap> results;          ///< by job index
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

/// Run a seeded randomized multi-job stream: kinds cycle, arrivals are
/// hashed-random, admission is bounded. Everything returned is a pure
/// function of (backend, nranks, seed, njobs, fault_spec).
StreamOutcome run_stream(BackendKind b, int nranks, std::uint64_t seed,
                         int njobs, int max_concurrent,
                         const std::string& fault_spec = "") {
  WorldConfig cfg;
  cfg.machine = sim::hawk();
  cfg.machine.cores_per_node = 4;
  cfg.nranks = nranks;
  cfg.backend = b;
  if (!fault_spec.empty()) cfg.faults = sim::FaultPlan::parse(fault_spec, 99);
  World world(cfg);
  auto& jm = world.jobs();
  jm.set_max_concurrent(max_concurrent);

  const auto kinds = stress_kinds();
  StreamOutcome out;
  out.results.resize(static_cast<std::size_t>(njobs));

  double clock = 0.0;
  for (int i = 0; i < njobs; ++i) {
    clock += 0.004 * support::hash_uniform(seed, /*stream=*/11, i);
    const GraphKey key = kinds[static_cast<std::size_t>(i) % kinds.size()];
    const std::uint64_t s = job_seed(seed, i);
    world.engine().at(clock, [&world, &jm, &out, i, key, s]() {
      rt::JobSpec spec;
      spec.name = key.kind;
      jm.submit(spec, [&world, &out, i, key, s](rt::JobId id) {
        auto g = apps::serve::acquire_graph(world, key);
        g->start(s, [&world, &out, i, id, g]() {
          out.results[static_cast<std::size_t>(i)] = g->result();
          apps::serve::release_graph(world, g);
          world.jobs().complete(id);
        });
      });
    });
  }

  out.makespan = world.fence();
  EXPECT_EQ(jm.completed(), static_cast<std::size_t>(njobs));
  out.latencies = jm.latencies();
  for (int i = 0; i < njobs; ++i) {
    const auto& js = world.comm().job_stats(static_cast<rt::JobId>(i + 1));
    out.job_traffic.push_back(js.messages + js.splitmd_sends);
    // Per-job data-lifecycle isolation: at fence every job's DataCopy
    // handles are back to zero (a cross-job leak would park live handles
    // on some job forever).
    const auto& ds = world.data_tracker().job_stats(static_cast<rt::JobId>(i + 1));
    EXPECT_EQ(ds.live_handles, 0u) << "job " << i + 1 << " leaked handles";
    EXPECT_EQ(ds.live_bytes, 0u) << "job " << i + 1 << " leaked bytes";
    EXPECT_GT(ds.allocs, 0u) << "job " << i + 1 << " never allocated data";
    EXPECT_EQ(ds.allocs, ds.releases);
  }
  out.cache_hits = jm.cache().stats().hits;
  out.cache_misses = jm.cache().stats().misses;
  return out;
}

/// Solo reference: the same kind+seed job alone in a fresh world.
ResultMap run_solo(BackendKind b, int nranks, const GraphKey& key,
                   std::uint64_t s) {
  WorldConfig cfg;
  cfg.machine = sim::hawk();
  cfg.machine.cores_per_node = 4;
  cfg.nranks = nranks;
  cfg.backend = b;
  World world(cfg);
  ResultMap out;
  world.jobs().submit(rt::JobSpec{key.kind, 1, 0}, [&world, &out, key, s](rt::JobId id) {
    auto g = apps::serve::acquire_graph(world, key);
    g->start(s, [&world, &out, id, g]() {
      out = g->result();
      apps::serve::release_graph(world, g);
      world.jobs().complete(id);
    });
  });
  world.fence();
  return out;
}

void expect_streams_identical(const StreamOutcome& a, const StreamOutcome& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.latencies, b.latencies);
  EXPECT_EQ(a.job_traffic, b.job_traffic);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i)
    EXPECT_EQ(a.results[i], b.results[i]) << "job " << i << " result drifted";
}

TEST(MultiJobStress, RerunsBitIdenticalOnBothBackends) {
  for (const BackendKind b : {BackendKind::Parsec, BackendKind::Madness}) {
    const auto r1 = run_stream(b, 4, 1234, 9, 3);
    const auto r2 = run_stream(b, 4, 1234, 9, 3);
    expect_streams_identical(r1, r2);
    // A different seed is a genuinely different run.
    const auto r3 = run_stream(b, 4, 4321, 9, 3);
    EXPECT_NE(r1.makespan, r3.makespan);
  }
}

TEST(MultiJobStress, RerunsBitIdenticalUnderFaults) {
  // Drops force ReliableLink retransmissions and rank 1 straggles: the
  // perturbed schedule must still replay bit-identically per seed.
  const std::string spec = "drop=0.02,straggler=1:1.7";
  for (const BackendKind b : {BackendKind::Parsec, BackendKind::Madness}) {
    const auto r1 = run_stream(b, 4, 777, 6, 2, spec);
    const auto r2 = run_stream(b, 4, 777, 6, 2, spec);
    expect_streams_identical(r1, r2);
  }
}

TEST(MultiJobStress, PerJobResultsMatchSoloRuns) {
  const auto kinds = stress_kinds();
  for (const BackendKind b : {BackendKind::Parsec, BackendKind::Madness}) {
    const auto r = run_stream(b, 4, 2024, 9, 3);
    for (int i = 0; i < 9; ++i) {
      const GraphKey key = kinds[static_cast<std::size_t>(i) % kinds.size()];
      const ResultMap solo = run_solo(b, 4, key, job_seed(2024, i));
      const ResultMap& got = r.results[static_cast<std::size_t>(i)];
      ASSERT_EQ(got.size(), solo.size()) << key.kind << " job " << i;
      if (key.kind == "bspmm") {
        // Streaming tile_add folds in arrival order, which depends on the
        // interleaving: equal up to summation-order rounding.
        for (const auto& [coord, norm] : solo) {
          const auto it = got.find(coord);
          ASSERT_NE(it, got.end());
          EXPECT_NEAR(it->second, norm, 1e-9 * (1.0 + std::abs(norm)));
        }
      } else {
        // Single-assignment dataflow: values are timing-independent.
        EXPECT_EQ(got, solo) << key.kind << " job " << i;
      }
    }
  }
}

TEST(GraphCache, CountsHitsMissesAndEvictions) {
  WorldConfig cfg;
  cfg.nranks = 2;
  World world(cfg);
  auto& cache = world.jobs().cache();
  const GraphKey key{"potrf", {256, 128, 0, 0}};

  auto g1 = apps::serve::acquire_graph(world, key);
  EXPECT_EQ(cache.stats().misses, 1u);
  // Exclusive checkout: a concurrent same-key job builds its own instance.
  auto g2 = apps::serve::acquire_graph(world, key);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_NE(g1.get(), g2.get());

  apps::serve::release_graph(world, g1);
  EXPECT_EQ(cache.size(), 1u);
  auto g3 = apps::serve::acquire_graph(world, key);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(g3.get(), g1.get());

  // Structure mutation after caching invalidates the pooled entry.
  apps::serve::release_graph(world, g3);
  g3->mutate_for_test();  // set_keymap bumps the TT mutation counter
  auto g4 = apps::serve::acquire_graph(world, key);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_NE(g4.get(), g3.get());
}

TEST(GraphCache, CachedInstanceRunsBitIdenticalToRebuilt) {
  // Two sequential same-seed jobs; in one world job 2 reuses job 1's warm
  // instance (cache hit), in the other a mutation between the jobs forces
  // an eviction so job 2 rebuilds from scratch. Job 2 starts at the same
  // virtual time in both worlds, so every latency and result value must
  // match bitwise: a warm instance is indistinguishable from a fresh one.
  const GraphKey key{"potrf", {384, 128, 0, 0}};
  auto run_two = [&](bool evict_between) {
    WorldConfig cfg;
    cfg.nranks = 4;
    auto world = std::make_unique<World>(cfg);
    auto& jm = world->jobs();
    std::vector<ResultMap> results;
    std::function<void()> submit_one = [&]() {
      jm.submit(rt::JobSpec{"potrf", 1, 0}, [&](rt::JobId id) {
        auto g = apps::serve::acquire_graph(*world, key);
        g->start(5, [&, id, g]() {
          results.push_back(g->result());
          apps::serve::release_graph(*world, g);
          if (evict_between && jm.submitted() < 2) g->mutate_for_test();
          jm.complete(id);
          if (jm.submitted() < 2) submit_one();
        });
      });
    };
    submit_one();
    world->fence();
    EXPECT_EQ(jm.completed(), 2u);
    if (evict_between) {
      EXPECT_EQ(jm.cache().stats().hits, 0u);
      EXPECT_EQ(jm.cache().stats().misses, 2u);
      EXPECT_EQ(jm.cache().stats().evictions, 1u);
    } else {
      EXPECT_EQ(jm.cache().stats().hits, 1u);
      EXPECT_EQ(jm.cache().stats().misses, 1u);
    }
    return std::make_pair(jm.latencies(), std::move(results));
  };
  const auto [lat_hit, res_hit] = run_two(/*evict_between=*/false);
  const auto [lat_rebuilt, res_rebuilt] = run_two(/*evict_between=*/true);
  EXPECT_EQ(lat_hit, lat_rebuilt);
  ASSERT_EQ(res_hit.size(), 2u);
  EXPECT_EQ(res_hit, res_rebuilt);
  // potrf values are timing-independent, so the two jobs also agree.
  EXPECT_EQ(res_hit[0], res_hit[1]);
}

TEST(GraphCache, KeymapSwitchEvictsAndRebuildsBitIdentical) {
  // Serving analogue of the apps' --keymap knob. apply_keymap() re-applies
  // every TT's placement map via set_keymap, which bumps the mutation
  // counters: a pooled instance rekeyed after release is stale, so the next
  // same-key acquire must evict and rebuild. And because placement moves
  // tasks without touching numerics, a job on the rekeyed (node-aware)
  // graph produces the bitwise-identical factor as the cyclic run.
  WorldConfig cfg;
  cfg.nranks = 4;
  cfg.ranks_per_node = 2;
  World world(cfg);
  auto& cache = world.jobs().cache();
  const GraphKey key{"potrf", {384, 128, 0, 0}};

  auto run_job = [&world](const std::shared_ptr<apps::serve::JobGraph>& g,
                          std::uint64_t seed) {
    ResultMap out;
    world.jobs().submit(rt::JobSpec{"potrf", 1, 0},
                        [&world, &out, &g, seed](rt::JobId id) {
                          g->start(seed, [&world, &out, &g, id]() {
                            out = g->result();
                            world.jobs().complete(id);
                          });
                        });
    world.fence();
    return out;
  };

  // Job 1: cyclic placement (the build default), then cache the instance.
  auto g1 = apps::serve::acquire_graph(world, key);
  EXPECT_EQ(cache.stats().misses, 1u);
  const ResultMap cyclic = run_job(g1, 5);
  apps::serve::release_graph(world, g1);

  // Switching the keymap on the pooled instance bumps its mutation count...
  const std::uint64_t before = g1->mutation_count();
  g1->apply_keymap(KeymapKind::NodeAware);
  EXPECT_GT(g1->mutation_count(), before);

  // ...so the next acquire evicts it and rebuilds from scratch.
  auto g2 = apps::serve::acquire_graph(world, key);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_NE(g2.get(), g1.get());

  // Job 2 on the rebuilt instance, rekeyed to node-aware while checked out:
  // same seed, bitwise-identical result (POTRF is timing-independent).
  g2->apply_keymap(KeymapKind::NodeAware);
  const ResultMap node_aware = run_job(g2, 5);
  EXPECT_EQ(node_aware, cyclic);
  apps::serve::release_graph(world, g2);

  // release_graph stamps the mutation count at release time, so a rekey
  // done before release does not poison the pool: next acquire is a hit.
  auto g3 = apps::serve::acquire_graph(world, key);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(g3.get(), g2.get());
  apps::serve::release_graph(world, g3);
}

TEST(Admission, BoundsConcurrencyAndAdmitsFifo) {
  WorldConfig cfg;
  cfg.nranks = 2;
  World world(cfg);
  auto& jm = world.jobs();
  jm.set_max_concurrent(1);
  const GraphKey key{"potrf", {256, 128, 0, 0}};
  std::vector<int> completion_order;
  for (int i = 0; i < 3; ++i) {
    jm.submit(rt::JobSpec{"j" + std::to_string(i), 1, 0},
              [&world, &jm, &completion_order, i, key](rt::JobId id) {
                EXPECT_LE(jm.running(), 1);
                auto g = apps::serve::acquire_graph(world, key);
                g->start(static_cast<std::uint64_t>(i),
                         [&world, &jm, &completion_order, i, id, g]() {
                           completion_order.push_back(i);
                           apps::serve::release_graph(world, g);
                           jm.complete(id);
                         });
              });
  }
  EXPECT_EQ(jm.running(), 1);
  EXPECT_EQ(jm.pending(), 2u);
  world.fence();
  EXPECT_EQ(completion_order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(jm.cache().stats().hits, 2u);  // serialized jobs share one instance
}

TEST(Fairness, InflightCapHonoredThroughServingPath) {
  WorldConfig cfg;
  cfg.nranks = 2;
  cfg.machine.cores_per_node = 4;
  World world(cfg);
  auto& jm = world.jobs();
  const GraphKey key{"potrf", {768, 128, 0, 0}};
  rt::JobSpec spec;
  spec.name = "capped";
  spec.inflight_cap = 2;
  jm.submit(spec, [&world, key](rt::JobId id) {
    auto g = apps::serve::acquire_graph(world, key);
    g->start(9, [&world, id, g]() {
      apps::serve::release_graph(world, g);
      world.jobs().complete(id);
    });
  });
  world.fence();
  for (int r = 0; r < 2; ++r) {
    const auto& jc = world.scheduler(r).job_counters(1);
    EXPECT_GT(jc.tasks_run, 0u);
    EXPECT_LE(jc.max_inflight, 2);
    EXPECT_EQ(jc.inflight, 0);
    EXPECT_EQ(jc.submitted, jc.tasks_run);
  }
}

TEST(Fairness, CapOnHeavyJobBoundsLightJobLatency) {
  const GraphKey heavy{"potrf", {1024, 128, 0, 0}};
  const GraphKey light{"potrf", {256, 128, 0, 0}};

  auto run_pair = [&](int heavy_cap) {
    WorldConfig cfg;
    cfg.nranks = 2;
    cfg.machine.cores_per_node = 2;
    World world(cfg);
    auto& jm = world.jobs();
    auto launch = [&world](const GraphKey& key, rt::JobSpec spec,
                           std::uint64_t s) {
      world.jobs().submit(spec, [&world, key, s](rt::JobId id) {
        auto g = apps::serve::acquire_graph(world, key);
        g->start(s, [&world, id, g]() {
          apps::serve::release_graph(world, g);
          world.jobs().complete(id);
        });
      });
    };
    rt::JobSpec hs;
    hs.name = "heavy";
    hs.inflight_cap = heavy_cap;
    launch(heavy, hs, 1);
    // The light job arrives once the heavy job's tasks flood the queues.
    world.engine().at(1e-4, [&]() { launch(light, rt::JobSpec{"light", 1, 0}, 2); });
    world.fence();
    return jm.latencies();
  };

  const auto uncapped = run_pair(/*heavy_cap=*/0);
  const auto capped = run_pair(/*heavy_cap=*/1);
  ASSERT_EQ(uncapped.size(), 2u);
  ASSERT_EQ(capped.size(), 2u);
  // Capping the heavy job's per-rank in-flight tasks must strictly improve
  // the light job's latency (it no longer waits behind a full pipeline).
  EXPECT_LT(capped[1], uncapped[1]);
  // And the light job must not be starved outright: it finishes well
  // before the heavy job despite sharing every worker.
  EXPECT_LT(capped[1], capped[0]);
}

TEST(ServeJobs, SingleJobBitIdenticalToSingleDagPath) {
  const int n = 512, bs = 128;
  const std::uint64_t seed = 42;
  for (const BackendKind b : {BackendKind::Parsec, BackendKind::Madness}) {
    WorldConfig cfg;
    cfg.nranks = 4;
    cfg.backend = b;

    World plain(cfg);
    support::Rng rng(seed);
    const auto a = linalg::random_spd(rng, n, bs);
    const auto res = apps::cholesky::run(plain, a, {});

    World serve(cfg);
    auto& jm = serve.jobs();
    const GraphKey key{"potrf", {n, bs, 0, 0}};
    jm.submit(rt::JobSpec{"potrf", 1, 0}, [&serve, key, seed](rt::JobId id) {
      auto g = apps::serve::acquire_graph(serve, key);
      g->start(seed, [&serve, id, g]() {
        apps::serve::release_graph(serve, g);
        serve.jobs().complete(id);
      });
    });
    const double makespan = serve.fence();

    // The multi-tenant path (job 1, per-job queues, ambient-job plumbing)
    // adds zero events and zero charges: makespan and every message
    // counter match the historical single-DAG run exactly.
    EXPECT_EQ(makespan, res.makespan) << rt::to_string(b);
    EXPECT_EQ(serve.comm().stats().messages, plain.comm().stats().messages);
    EXPECT_EQ(serve.comm().stats().splitmd_sends,
              plain.comm().stats().splitmd_sends);
    EXPECT_EQ(serve.comm().stats().serializations,
              plain.comm().stats().serializations);
  }
}

}  // namespace
