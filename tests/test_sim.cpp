// Unit tests for the discrete-event engine, resources, and machine models.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/machine.hpp"
#include "sim/resource.hpp"

namespace {

using namespace ttg::sim;

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.at(3.0, [&] { order.push_back(3); });
  e.at(1.0, [&] { order.push_back(1); });
  e.at(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(e.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SimultaneousEventsAreFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) e.at(1.0, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine e;
  int fired = 0;
  e.at(1.0, [&] {
    ++fired;
    e.after(1.0, [&] {
      ++fired;
      e.after(1.0, [&] { ++fired; });
    });
  });
  EXPECT_DOUBLE_EQ(e.run(), 3.0);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(e.events_processed(), 3u);
  EXPECT_TRUE(e.idle());
}

TEST(Engine, NowAdvancesMonotonically) {
  Engine e;
  double last = -1.0;
  for (double t : {5.0, 1.0, 3.0})
    e.at(t, [&, t] {
      EXPECT_GE(e.now(), last);
      EXPECT_DOUBLE_EQ(e.now(), t);
      last = e.now();
    });
  e.run();
}

TEST(Engine, RunUntilStopsAtPredicate) {
  Engine e;
  int count = 0;
  for (int i = 1; i <= 10; ++i) e.at(i, [&] { ++count; });
  e.run_until([&] { return count == 4; });
  EXPECT_EQ(count, 4);
  EXPECT_DOUBLE_EQ(e.now(), 4.0);
  e.run();
  EXPECT_EQ(count, 10);
}

TEST(Engine, SchedulingInPastAborts) {
  Engine e;
  e.at(5.0, [&] {
    EXPECT_DEATH(e.at(1.0, [] {}), "past");
  });
  e.run();
}

TEST(Engine, CancelledEventsLeaveNoTrace) {
  Engine e;
  int fired = 0;
  auto t1 = e.at_cancellable(1.0, [&] { ++fired; });
  auto t2 = e.at_cancellable(2.0, [&] { ++fired; });
  e.at(3.0, [&] { ++fired; });
  Engine::cancel(t2);
  EXPECT_DOUBLE_EQ(e.run(), 3.0);
  EXPECT_EQ(fired, 2);
  // A cancelled event does not count as processed.
  EXPECT_EQ(e.events_processed(), 2u);
  (void)t1;
}

TEST(Engine, CancellingOnlyPendingEventsDoesNotAdvanceClock) {
  Engine e;
  auto t = e.at_cancellable(7.0, [] { FAIL() << "cancelled event ran"; });
  Engine::cancel(t);
  EXPECT_DOUBLE_EQ(e.run(), 0.0);
  EXPECT_EQ(e.events_processed(), 0u);
}

TEST(Engine, CancelSlotsRecycleThroughThePool) {
  Engine e;
  // Arm/fire a batch of cancellable timers: every slot returns to the pool.
  for (int i = 0; i < 8; ++i) e.after_cancellable(1.0 + i, [] {});
  e.run();
  EXPECT_EQ(e.pooled_cancel_slots(), 8u);
  // Re-arming draws from the pool instead of growing it.
  auto t = e.after_cancellable(1.0, [] {});
  EXPECT_EQ(e.pooled_cancel_slots(), 7u);
  // A stale token (slot already recycled) is invalidated by the generation
  // stamp: cancelling it is a no-op for the slot's next occupant.
  e.run();
  EXPECT_EQ(e.pooled_cancel_slots(), 8u);
  auto t2 = e.after_cancellable(1.0, [] {});
  Engine::cancel(t);  // stale: must not cancel t2's occupancy
  int fired = 0;
  Engine::cancel(t2);  // fresh: does cancel
  e.after(2.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.pooled_cancel_slots(), 8u);
}

TEST(FifoResource, SerializesRequests) {
  Engine e;
  FifoResource r(e, "nic");
  std::vector<double> done;
  e.at(0.0, [&] {
    r.submit(2.0, [&] { done.push_back(e.now()); });
    r.submit(3.0, [&] { done.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 5.0);  // queued behind the first
  EXPECT_DOUBLE_EQ(r.busy_time(), 5.0);
}

TEST(FifoResource, IdleGapsNotCharged) {
  Engine e;
  FifoResource r(e, "nic");
  e.at(0.0, [&] { r.submit(1.0, [] {}); });
  e.at(10.0, [&] { r.submit(1.0, [] {}); });
  EXPECT_DOUBLE_EQ(e.run(), 11.0);
  EXPECT_DOUBLE_EQ(r.busy_time(), 2.0);
}

TEST(PoolResource, ParallelServers) {
  Engine e;
  PoolResource p(e, "pool", 2);
  std::vector<double> done;
  e.at(0.0, [&] {
    for (int i = 0; i < 4; ++i) p.submit(1.0, [&] { done.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(done.size(), 4u);
  // Two at t=1, two at t=2.
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 1.0);
  EXPECT_DOUBLE_EQ(done[2], 2.0);
  EXPECT_DOUBLE_EQ(done[3], 2.0);
}

TEST(Machine, PresetsAreSane) {
  for (const auto& m : {hawk(), seawulf()}) {
    EXPECT_GT(m.cores_per_node, 0);
    EXPECT_GT(m.core_gflops, 0.0);
    EXPECT_GT(m.nic_bw, 0.0);
    EXPECT_GT(m.net_latency, 0.0);
    EXPECT_GT(m.bisection_factor, 0.0);
    EXPECT_LE(m.bisection_factor, 1.0);
  }
  EXPECT_EQ(hawk().name, "Hawk");
  EXPECT_EQ(seawulf().name, "Seawulf");
  // Hawk's HDR200 is faster than Seawulf's FDR.
  EXPECT_GT(hawk().nic_bw, seawulf().nic_bw);
}

TEST(Machine, TimeHelpers) {
  const auto m = hawk();
  EXPECT_DOUBLE_EQ(m.flops_time(m.core_gflops * 1e9), 1.0);
  EXPECT_DOUBLE_EQ(m.flops_time(m.core_gflops * 1e9, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(m.wire_time(static_cast<std::size_t>(m.nic_bw)), 1.0);
  EXPECT_GT(m.node_gflops(), m.core_gflops);
}

}  // namespace
