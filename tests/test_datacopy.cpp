// Tests of the data-lifecycle layer: DataCopy refcounting, the
// serialize-once broadcast cache, per-rank memory accounting (live bytes,
// high watermark, input copies), the fence-time leak check, CopyPolicy
// overrides, and bit-identical application numerics on both backends.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/bspmm/bspmm_ttg.hpp"
#include "apps/cholesky/cholesky_ttg.hpp"
#include "linalg/kernels.hpp"
#include "linalg/tile.hpp"
#include "runtime/datacopy.hpp"
#include "sparse/yukawa_gen.hpp"
#include "ttg/ttg.hpp"

namespace {

using namespace ttg;
using linalg::Tile;

WorldConfig cfg(int nranks, BackendKind b = BackendKind::Parsec) {
  WorldConfig c;
  c.machine = sim::hawk();
  c.machine.cores_per_node = 2;
  c.nranks = nranks;
  c.backend = b;
  return c;
}

// ---- DataTracker unit behaviour ----

TEST(DataTracker, AccountsAllocReleaseAndWatermark) {
  rt::DataTracker t;
  t.configure(2);
  t.on_alloc(0, 100);
  t.on_alloc(0, 50);
  t.on_alloc(1, 10);
  EXPECT_EQ(t.rank_stats(0).live_handles, 2u);
  EXPECT_EQ(t.rank_stats(0).live_bytes, 150u);
  EXPECT_EQ(t.rank_stats(0).high_watermark, 150u);
  t.on_release(0, 100);
  EXPECT_EQ(t.rank_stats(0).live_bytes, 50u);
  EXPECT_EQ(t.rank_stats(0).high_watermark, 150u);  // peak is sticky
  t.on_alloc(0, 20);
  EXPECT_EQ(t.rank_stats(0).high_watermark, 150u);  // 70 < peak
  EXPECT_EQ(t.live_handles(), 3u);
  EXPECT_EQ(t.live_bytes(), 80u);
  EXPECT_THROW(t.check_no_leaks(), support::ApiError);
  t.on_release(0, 50);
  t.on_release(0, 20);
  t.on_release(1, 10);
  EXPECT_NO_THROW(t.check_no_leaks());
  EXPECT_EQ(t.totals().allocs, 4u);
  EXPECT_EQ(t.totals().releases, 4u);
}

TEST(DataTracker, TracksInputCopies) {
  rt::DataTracker t;
  t.configure(1);
  t.on_input_copy(0, 64);
  t.on_input_copy(0, 64);
  EXPECT_EQ(t.rank_stats(0).input_copies, 2u);
  EXPECT_EQ(t.rank_stats(0).input_copy_bytes, 128u);
}

// ---- DataCopy handle semantics ----

TEST(DataCopy, RefcountsAndReleasesIntoTracker) {
  World w(cfg(1));
  {
    rt::DataCopy<std::vector<double>> d(w.data_tracker(), nullptr, w.comm(), 0,
                                        std::vector<double>{1.0, 2.0, 3.0});
    EXPECT_TRUE(static_cast<bool>(d));
    EXPECT_EQ(d.use_count(), 1);
    auto d2 = d;  // handles share the block, the value is not duplicated
    EXPECT_EQ(d.use_count(), 2);
    EXPECT_EQ(&d.value(), &d2.value());
    EXPECT_EQ(d.value(), (std::vector<double>{1.0, 2.0, 3.0}));
    EXPECT_EQ(w.data_tracker().rank_stats(0).allocs, 1u);
    EXPECT_EQ(w.data_tracker().live_handles(), 1u);
  }
  EXPECT_EQ(w.data_tracker().live_handles(), 0u);
  EXPECT_EQ(w.data_tracker().rank_stats(0).releases, 1u);
  w.fence();  // leak check passes
}

TEST(DataCopy, SerializeOncePolicyCachesTheBuffer) {
  World w(cfg(1, BackendKind::Parsec));  // serialize_once on by default
  rt::DataCopy<std::vector<double>> d(w.data_tracker(), nullptr, w.comm(), 0,
                                      std::vector<double>{4.0, 5.0});
  bool hit = true;
  auto b1 = d.serialized(&hit);
  EXPECT_FALSE(hit);
  auto b2 = d.serialized(&hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(b1.get(), b2.get());  // the same cached buffer, not a rebuild
  EXPECT_EQ(w.comm().stats().serializations, 1u);
  EXPECT_EQ(w.comm().stats().serialize_hits, 1u);
  EXPECT_EQ(w.data_tracker().rank_stats(0).serializations, 1u);
  EXPECT_EQ(w.data_tracker().rank_stats(0).serialize_hits, 1u);
  d.reset();
  w.fence();
}

TEST(DataCopy, MadnessPolicyRebuildsPerSend) {
  World w(cfg(1, BackendKind::Madness));  // serialize_once off by default
  rt::DataCopy<std::vector<double>> d(w.data_tracker(), nullptr, w.comm(), 0,
                                      std::vector<double>{4.0, 5.0});
  bool hit = true;
  auto b1 = d.serialized(&hit);
  EXPECT_FALSE(hit);
  auto b2 = d.serialized(&hit);
  EXPECT_FALSE(hit);  // whole-object semantics: every send re-serializes
  EXPECT_NE(b1.get(), b2.get());
  EXPECT_EQ(*b1, *b2);  // ... to identical bytes
  EXPECT_EQ(w.comm().stats().serializations, 2u);
  EXPECT_EQ(w.comm().stats().serialize_hits, 0u);
  d.reset();
  w.fence();
}

TEST(DataCopy, PolicyOverrideTurnsCachingOnForMadness) {
  auto c = cfg(1, BackendKind::Madness);
  c.serialize_once = 1;  // ablation knob
  World w(c);
  EXPECT_TRUE(w.comm().serialize_once());
  EXPECT_FALSE(w.comm().zero_copy_local());
  rt::DataCopy<std::vector<double>> d(w.data_tracker(), nullptr, w.comm(), 0,
                                      std::vector<double>{6.0});
  bool hit = false;
  (void)d.serialized(&hit);
  (void)d.serialized(&hit);
  EXPECT_TRUE(hit);
  d.reset();
  w.fence();
}

// ---- fence-time leak check ----

TEST(DataCopy, FenceLeakCheckTripsOnALeakedHandle) {
  World w(cfg(1));
  auto leaked = std::make_unique<rt::DataCopy<int>>(w.data_tracker(), nullptr,
                                                    w.comm(), 0, 7);
  EXPECT_THROW(w.fence(), support::ApiError);
  leaked.reset();
  EXPECT_NO_THROW(w.fence());
}

// ---- broadcast: serialize once, message counts unchanged ----

rt::CommStats broadcast_vectors(WorldConfig c, int nkeys, int* received = nullptr) {
  World w(c);
  Edge<Int1, std::vector<double>> in("in"), out_e("out");
  auto tt = make_tt(
      w,
      [nkeys](const Int1&, std::vector<double>& v,
              std::tuple<Out<Int1, std::vector<double>>>& out) {
        std::vector<Int1> keys;
        for (int i = 1; i <= nkeys; ++i) keys.push_back(Int1{i});
        ttg::broadcast<0>(keys, v, out);
      },
      edges(in), edges(out_e), "bcaster");
  tt->set_keymap([](const Int1&) { return 0; });
  int got = 0;
  auto sink = make_sink(w, out_e, [&](const Int1&, std::vector<double>& v) {
    EXPECT_EQ(v, (std::vector<double>{1.5, -2.5}));
    ++got;
  });
  const int nranks = c.nranks;
  sink->set_keymap([nranks](const Int1& k) { return k.i % nranks; });
  make_graph_executable(*tt);
  make_graph_executable(*sink);
  tt->invoke(Int1{0}, std::vector<double>{1.5, -2.5});
  w.fence();
  EXPECT_EQ(got, nkeys);
  if (received != nullptr) *received = got;
  // Refcounts all returned to zero; the broadcast allocated exactly one
  // runtime-owned block on the sender.
  EXPECT_EQ(w.data_tracker().live_handles(), 0u);
  EXPECT_EQ(w.data_tracker().rank_stats(0).allocs, 1u);
  EXPECT_EQ(w.data_tracker().rank_stats(0).releases, 1u);
  EXPECT_GT(w.data_tracker().rank_stats(0).high_watermark, 0u);
  return w.comm().stats();
}

TEST(SerializeOnce, BroadcastToThreeRanksSerializesOnceOnParsec) {
  // Keys 1..3 land on ranks 1..3: one serialization, two cache hits, and
  // still one message per destination rank.
  const auto cs = broadcast_vectors(cfg(4, BackendKind::Parsec), 3);
  EXPECT_EQ(cs.messages, 3u);
  EXPECT_EQ(cs.serializations, 1u);
  EXPECT_EQ(cs.serialize_hits, 2u);
}

TEST(SerializeOnce, BroadcastOnMadnessSerializesPerDestination) {
  const auto cs = broadcast_vectors(cfg(4, BackendKind::Madness), 3);
  EXPECT_EQ(cs.messages, 3u);
  EXPECT_EQ(cs.serializations, 3u);
  EXPECT_EQ(cs.serialize_hits, 0u);
}

TEST(SerializeOnce, NonCoalescedAblationKeepsPerKeyMessages) {
  // optimized_broadcast=false sends one message per dependence. Keys 1..6 on
  // 4 ranks put key 4 on the sender itself: 5 remote dependences -> 5
  // messages, yet the serialized form is still built exactly once.
  auto c = cfg(4, BackendKind::Parsec);
  c.optimized_broadcast = false;
  const auto cs = broadcast_vectors(c, 6);
  EXPECT_EQ(cs.messages, 5u);
  EXPECT_EQ(cs.serializations, 1u);
  EXPECT_EQ(cs.serialize_hits, 4u);
}

TEST(SerializeOnce, TracerSeesAllocationsAndCacheHits) {
  auto c = cfg(4, BackendKind::Parsec);
  World w(c);
  w.enable_tracing();
  Edge<Int1, std::vector<double>> in("in"), out_e("out");
  auto tt = make_tt(w,
                    [](const Int1&, std::vector<double>& v,
                       std::tuple<Out<Int1, std::vector<double>>>& out) {
                      ttg::broadcast<0>(std::vector<Int1>{{1}, {2}, {3}}, v, out);
                    },
                    edges(in), edges(out_e), "bcaster");
  tt->set_keymap([](const Int1&) { return 0; });
  auto sink = make_sink(w, out_e, [](const Int1&, std::vector<double>&) {});
  sink->set_keymap([](const Int1& k) { return k.i % 4; });
  make_graph_executable(*tt);
  make_graph_executable(*sink);
  tt->invoke(Int1{0}, std::vector<double>{9.0});
  w.fence();
  const auto t = w.tracer().totals();
  EXPECT_EQ(t.data_allocs, 1u);
  EXPECT_EQ(t.data_releases, 1u);
  EXPECT_EQ(t.payload_serializations, 1u);
  EXPECT_EQ(t.serialize_cache_hits, 2u);
  EXPECT_EQ(w.tracer().rank_counters(0).data_allocs, 1u);
}

// ---- splitmd broadcast: one shared block instead of per-destination copies ----

TEST(SerializeOnce, SplitmdBroadcastSharesOneBlock) {
  World w(cfg(3, BackendKind::Parsec));
  Edge<Int1, Tile> in("in"), out_e("out");
  auto tt = make_tt(w,
                    [](const Int1&, Tile& t, std::tuple<Out<Int1, Tile>>& out) {
                      ttg::broadcast<0>(std::vector<Int1>{{1}, {2}}, t, out);
                    },
                    edges(in), edges(out_e), "bcaster");
  tt->set_keymap([](const Int1&) { return 0; });
  double got = 0.0;
  auto sink = make_sink(w, out_e, [&](const Int1&, Tile& t) { got = t(0, 1); });
  sink->set_keymap([](const Int1& k) { return k.i; });
  make_graph_executable(*tt);
  make_graph_executable(*sink);
  Tile t(4, 4);
  t(0, 1) = 2.75;
  tt->invoke(Int1{0}, std::move(t));
  w.fence();
  EXPECT_EQ(w.comm().stats().splitmd_sends, 2u);
  // The RMA data plane never archives the payload...
  EXPECT_EQ(w.comm().stats().serializations, 0u);
  // ...and both destinations shared one runtime-owned source block.
  EXPECT_EQ(w.data_tracker().rank_stats(0).allocs, 1u);
  EXPECT_EQ(w.data_tracker().live_handles(), 0u);
  EXPECT_DOUBLE_EQ(got, 2.75);
}

// ---- local delivery policy + per-rank accounting ----

rt::CommStats local_lvalue_send(WorldConfig c, rt::DataTracker::RankStats* rs = nullptr) {
  World w(c);
  Edge<Int1, Tile> in("in"), out_e("out");
  auto tt = make_tt(w,
                    [](const Int1& k, Tile& t, std::tuple<Out<Int1, Tile>>& out) {
                      ttg::send<0>(k, t, out);  // lvalue: copy semantics
                    },
                    edges(in), edges(out_e), "copy");
  auto sink = make_sink(w, out_e, [](const Int1&, Tile&) {});
  make_graph_executable(*tt);
  make_graph_executable(*sink);
  tt->invoke(Int1{0}, Tile(16, 16));
  w.fence();
  if (rs != nullptr) *rs = w.data_tracker().rank_stats(0);
  return w.comm().stats();
}

TEST(CopyPolicy, LocalSharesVsCopiesFollowBackendPolicy) {
  rt::DataTracker::RankStats rs{};
  const auto parsec = local_lvalue_send(cfg(1, BackendKind::Parsec), &rs);
  EXPECT_EQ(parsec.local_copies, 0u);
  EXPECT_GE(parsec.local_shares, 1u);
  // Local routing never allocates a handle, but every delivered input is a
  // task-private copy, accounted per rank.
  EXPECT_EQ(rs.allocs, 0u);
  EXPECT_GE(rs.input_copies, 1u);
  EXPECT_GT(rs.input_copy_bytes, 0u);

  const auto mad = local_lvalue_send(cfg(1, BackendKind::Madness));
  EXPECT_GE(mad.local_copies, 1u);
}

TEST(CopyPolicy, ZeroCopyLocalOverrideFlipsBothBackends) {
  auto pc = cfg(1, BackendKind::Parsec);
  pc.zero_copy_local = 0;  // make PaRSEC pay MADNESS-style local copies
  EXPECT_GE(local_lvalue_send(pc).local_copies, 1u);

  auto mc = cfg(1, BackendKind::Madness);
  mc.zero_copy_local = 1;  // give MADNESS the PaRSEC data-ownership model
  EXPECT_EQ(local_lvalue_send(mc).local_copies, 0u);
}

// ---- streaming reducers: refcounts across remote stream items ----

TEST(SerializeOnce, StreamingReduceReleasesEveryHandle) {
  for (const auto backend : {BackendKind::Parsec, BackendKind::Madness}) {
    World w(cfg(2, backend));
    Edge<Int1, int> in("in"), out_e("out");
    auto producer = make_tt(w,
                            [](const Int1&, int&, std::tuple<Out<Int1, int>>& out) {
                              for (int i = 1; i <= 4; ++i)
                                ttg::send<0>(Int1{0}, i * i, out);
                            },
                            edges(in), edges(out_e), "producer");
    producer->set_keymap([](const Int1&) { return 0; });
    int reduced = 0;
    auto consumer = make_tt(w,
                            [&](const Int1&, int& acc, std::tuple<>&) { reduced = acc; },
                            edges(out_e), std::tuple<>{}, "consumer");
    consumer->set_input_reducer<0>([](int& acc, int&& v) { acc += v; }, 4);
    consumer->set_keymap([](const Int1&) { return 1; });  // remote stream items
    make_graph_executable(*producer);
    make_graph_executable(*consumer);
    producer->invoke(Int1{0}, 0);
    w.fence();
    EXPECT_EQ(reduced, 1 + 4 + 9 + 16);
    EXPECT_EQ(w.data_tracker().live_handles(), 0u);
    const auto& rs = w.data_tracker().rank_stats(0);
    EXPECT_EQ(rs.allocs, 4u);  // one block per remote stream item
    EXPECT_EQ(rs.releases, 4u);
  }
}

// ---- resilience: retransmissions reuse the cached serialized buffer ----

TEST(SerializeOnce, RetransmissionsDoNotReserialize) {
  auto c = cfg(4, BackendKind::Parsec);
  c.faults = sim::FaultPlan::parse("drop=0.4", 7);
  int got = 0;
  const auto cs = broadcast_vectors(c, 3, &got);
  EXPECT_EQ(got, 3);  // recovered: everything still delivered exactly once
  // Drops at 40% on 3 sends + acks virtually guarantee at least one retry
  // with this seed; the retransmit path ships the cached bytes, so the
  // serialization count stays at one archive pass for the whole broadcast.
  EXPECT_GT(cs.retries, 0u);
  EXPECT_EQ(cs.serializations, 1u);
  EXPECT_EQ(cs.serialize_hits, 2u);
}

// ---- application numerics: bit-identical across backends ----

TEST(Numerics, PotrfBitIdenticalAcrossBackends) {
  support::Rng rng(42);
  auto a = linalg::random_spd(rng, 96, 32);
  auto ref = linalg::dense_cholesky(a.to_dense());
  auto run = [&](BackendKind b) {
    World w(cfg(2, b));
    return apps::cholesky::run(w, a);
  };
  const auto pa = run(BackendKind::Parsec);
  const auto ma = run(BackendKind::Madness);
  const Tile dp = pa.matrix.to_dense();
  const Tile dm = ma.matrix.to_dense();
  // Same task graph, same kernels, same per-tile accumulation order: the
  // factors must agree to the last bit regardless of backend or the
  // serialize-once cache.
  EXPECT_EQ(dp.data(), dm.data());
  EXPECT_LT(dp.max_abs_diff(ref), 1e-9);
}

TEST(Numerics, BspmmBitIdenticalPerBackendAndConsistentAcross) {
  sparse::YukawaParams p;
  p.natoms = 24;
  p.max_tile = 32;
  auto a = sparse::yukawa_matrix(p);
  auto run = [&](BackendKind b) {
    World w(cfg(2, b));
    apps::bspmm::Options opt;
    auto res = apps::bspmm::run(w, a, a, opt);
    EXPECT_EQ(w.data_tracker().live_handles(), 0u);
    return res;
  };
  const auto pa = run(BackendKind::Parsec);
  const auto ma = run(BackendKind::Madness);
  // Per backend the run is deterministic: repeating it reproduces the
  // product to the last bit (the serialize-once cache changes no payload).
  EXPECT_EQ(pa.c.to_dense().data(), run(BackendKind::Parsec).c.to_dense().data());
  EXPECT_EQ(ma.c.to_dense().data(), run(BackendKind::Madness).c.to_dense().data());
  // Across backends the streaming GEMM reductions accumulate in backend-
  // specific arrival order, so agreement is to rounding, not to the bit.
  EXPECT_LT(pa.c.to_dense().max_abs_diff(ma.c.to_dense()), 1e-12);
  EXPECT_GT(pa.c.nnz_tiles(), 0u);
}

}  // namespace
