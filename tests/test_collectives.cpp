// Tests of the collective data plane: spanning-tree shape helpers, the
// tree-routed broadcast on both wire protocols (whole-object archive and
// split-metadata), eager-AM coalescing, per-backend CollectivePolicy
// defaults and WorldConfig overrides, recovery of tree hops under fault
// injection, and bit-identical application numerics vs flat routing.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "apps/bspmm/bspmm_ttg.hpp"
#include "apps/cholesky/cholesky_ttg.hpp"
#include "linalg/kernels.hpp"
#include "linalg/tile.hpp"
#include "net/network.hpp"
#include "runtime/collective.hpp"
#include "sparse/yukawa_gen.hpp"
#include "ttg/ttg.hpp"

namespace {

using namespace ttg;
using linalg::Tile;
namespace coll = rt::collective;

WorldConfig cfg(int nranks, BackendKind b = BackendKind::Parsec) {
  WorldConfig c;
  c.machine = sim::hawk();
  c.machine.cores_per_node = 2;
  c.nranks = nranks;
  c.backend = b;
  return c;
}

// ---- tree shape: pure functions, pinned down without a world ----

TEST(TreeShape, HeapChildrenAreDeterministic) {
  // 7 members, arity 2: children(p) = {2p+1, 2p+2} clipped to 7.
  EXPECT_EQ(coll::tree_children(0, 7, 2), (std::vector<int>{1, 2}));
  EXPECT_EQ(coll::tree_children(1, 7, 2), (std::vector<int>{3, 4}));
  EXPECT_EQ(coll::tree_children(3, 7, 2), (std::vector<int>{7}));
  EXPECT_TRUE(coll::tree_children(4, 7, 2).empty());
  // 15 members, arity 4: two full levels.
  EXPECT_EQ(coll::tree_children(0, 15, 4), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(coll::tree_children(1, 15, 4), (std::vector<int>{5, 6, 7, 8}));
  EXPECT_EQ(coll::tree_children(3, 15, 4), (std::vector<int>{13, 14, 15}));
  EXPECT_TRUE(coll::tree_children(5, 15, 4).empty());
}

TEST(TreeShape, DepthIsLogarithmic) {
  EXPECT_EQ(coll::tree_depth(0, 2), 0);
  EXPECT_EQ(coll::tree_depth(3, 4), 1);   // M <= k: one flat level
  EXPECT_EQ(coll::tree_depth(7, 2), 3);
  EXPECT_EQ(coll::tree_depth(15, 4), 2);
  EXPECT_EQ(coll::tree_depth(15, 2), 4);
  // Flat routing (arity >= M) is always depth 1.
  EXPECT_EQ(coll::tree_depth(63, 63), 1);
}

TEST(TreeShape, ChildSubtreesPartitionTheMembers) {
  for (const int arity : {2, 4}) {
    for (const int n : {1, 3, 7, 15, 22, 64}) {
      std::vector<int> seen;
      for (int c : coll::tree_children(0, n, arity)) {
        const auto sub = coll::tree_subtree(c, n, arity);
        EXPECT_EQ(static_cast<int>(sub.size()), coll::tree_subtree_size(c, n, arity));
        seen.insert(seen.end(), sub.begin(), sub.end());
      }
      std::sort(seen.begin(), seen.end());
      std::vector<int> all;
      for (int p = 1; p <= n; ++p) all.push_back(p);
      EXPECT_EQ(seen, all) << "n=" << n << " arity=" << arity;
      EXPECT_EQ(coll::tree_subtree_size(0, n, arity), n);
    }
  }
}

// ---- per-backend policy defaults and WorldConfig overrides ----

TEST(CollectivePolicy, BackendDefaultsMatchTheProtocolStory) {
  World wp(cfg(2, BackendKind::Parsec));
  EXPECT_EQ(wp.comm().collective().tree_arity, 4);
  EXPECT_DOUBLE_EQ(wp.comm().collective().am_flush_window, 1.0e-6);
  // MADNESS routes flat with no coalescing window.
  World wm(cfg(2, BackendKind::Madness));
  EXPECT_EQ(wm.comm().collective().tree_arity, 0);
  EXPECT_DOUBLE_EQ(wm.comm().collective().am_flush_window, 0.0);
}

TEST(CollectivePolicy, WorldConfigOverridesBothKnobs) {
  auto c = cfg(2, BackendKind::Madness);
  c.broadcast_tree_arity = 2;  // give MADNESS the routing backend's tree
  c.am_flush_window = 5.0e-6;
  World w(c);
  EXPECT_EQ(w.comm().collective().tree_arity, 2);
  EXPECT_DOUBLE_EQ(w.comm().collective().am_flush_window, 5.0e-6);

  auto cp = cfg(2, BackendKind::Parsec);
  cp.broadcast_tree_arity = 0;  // force flat / no coalescing on PaRSEC
  cp.am_flush_window = 0.0;
  World w2(cp);
  EXPECT_EQ(w2.comm().collective().tree_arity, 0);
  EXPECT_DOUBLE_EQ(w2.comm().collective().am_flush_window, 0.0);
}

// ---- tree-routed whole-object broadcast ----

struct BroadcastResult {
  rt::CommStats cs;
  net::NetStats ns;
  std::uint64_t root_nic_sends = 0;
  double root_nic_busy = 0.0;
  std::uint64_t root_allocs = 0;
  std::uint64_t live_handles = 0;
  double makespan = 0.0;
  std::vector<int> deliveries;  ///< per key 1..nkeys
};

/// Rank 0 broadcasts one vector to keys 1..nkeys scattered k.i % nranks;
/// each delivery checks the payload bit-for-bit against the original.
BroadcastResult broadcast_run(WorldConfig c, int nkeys, int payload_len = 2) {
  std::vector<double> payload;
  for (int i = 0; i < payload_len; ++i) payload.push_back(1.5 - i);
  World w(c);
  Edge<Int1, std::vector<double>> in("in"), out_e("out");
  auto tt = make_tt(
      w,
      [nkeys](const Int1&, std::vector<double>& v,
              std::tuple<Out<Int1, std::vector<double>>>& out) {
        std::vector<Int1> keys;
        for (int i = 1; i <= nkeys; ++i) keys.push_back(Int1{i});
        ttg::broadcast<0>(keys, v, out);
      },
      edges(in), edges(out_e), "bcaster");
  tt->set_keymap([](const Int1&) { return 0; });
  BroadcastResult r;
  r.deliveries.assign(static_cast<std::size_t>(nkeys) + 1, 0);
  auto sink = make_sink(w, out_e, [&](const Int1& k, std::vector<double>& v) {
    EXPECT_EQ(v, payload);
    r.deliveries[static_cast<std::size_t>(k.i)] += 1;
  });
  const int nranks = c.nranks;
  sink->set_keymap([nranks](const Int1& k) { return k.i % nranks; });
  make_graph_executable(*tt);
  make_graph_executable(*sink);
  tt->invoke(Int1{0}, payload);
  w.fence();
  r.cs = w.comm().stats();
  r.ns = w.network().stats();
  r.root_nic_sends = w.network().nic_sends(0);
  r.root_nic_busy = w.network().nic_busy(0);
  r.root_allocs = w.data_tracker().rank_stats(0).allocs;
  r.live_handles = w.data_tracker().live_handles();
  r.makespan = w.engine().now();
  return r;
}

TEST(TreeBroadcast, RootNicSendsDropFromFanoutToArity) {
  // 16 ranks, keys 1..15 land on ranks 1..15: the root's injection count is
  // R-1 under flat routing and exactly the arity under tree routing.
  for (const auto& [arity, expected] : std::vector<std::pair<int, std::uint64_t>>{
           {0, 15}, {2, 2}, {4, 4}}) {
    auto c = cfg(16, BackendKind::Parsec);
    c.broadcast_tree_arity = arity;
    const auto r = broadcast_run(c, 15);
    EXPECT_EQ(r.root_nic_sends, expected) << "arity=" << arity;
    // One logical AM per destination regardless of routing, every key
    // delivered exactly once, and no leaked handles after the fence.
    EXPECT_EQ(r.cs.messages, 15u) << "arity=" << arity;
    for (int k = 1; k <= 15; ++k) EXPECT_EQ(r.deliveries[static_cast<std::size_t>(k)], 1);
    EXPECT_EQ(r.root_allocs, 1u);
    EXPECT_EQ(r.live_handles, 0u);
  }
}

TEST(TreeBroadcast, TreeUnloadsTheRootNicForLargePayloads) {
  // With a payload large enough that wire time dominates key lists, the
  // root's send-NIC busy time under the tree is a fraction of flat routing
  // (2 hops' worth of bytes instead of 15).
  auto flat = cfg(16, BackendKind::Parsec);
  flat.broadcast_tree_arity = 0;
  auto tree = cfg(16, BackendKind::Parsec);
  tree.broadcast_tree_arity = 2;
  const auto rf = broadcast_run(flat, 15, /*payload_len=*/1024);
  const auto rt_ = broadcast_run(tree, 15, /*payload_len=*/1024);
  EXPECT_LT(rt_.root_nic_busy, 0.5 * rf.root_nic_busy);
  // Store-and-forward never re-serializes: interior hops ship the cached
  // buffer, so total payload wire bytes grow only by routing headers while
  // the root's share collapses.
  EXPECT_EQ(rt_.cs.serializations, 1u);
}

TEST(TreeBroadcast, InteriorForwardsServeFromTheSerializedCache) {
  // 15 destinations, arity 2: one archive pass at the root; the other root
  // child plus all 13 interior forwards are cache reuses. Counter parity
  // with flat routing: serializations + serialize_hits == messages.
  auto c = cfg(16, BackendKind::Parsec);
  c.broadcast_tree_arity = 2;
  const auto r = broadcast_run(c, 15);
  EXPECT_EQ(r.cs.serializations, 1u);
  EXPECT_EQ(r.cs.serialize_hits, 14u);
  EXPECT_EQ(r.cs.broadcast_forwards, 13u);  // 15 tree edges - 2 root edges
  EXPECT_EQ(r.cs.messages, 15u);
}

TEST(TreeBroadcast, SmallFanoutDegeneratesToFlatBitIdentically) {
  // 3 remote destinations with arity 4: the "tree" is the flat pattern, so
  // every observable (makespan included) matches arity-0 routing exactly.
  auto flat = cfg(4, BackendKind::Parsec);
  flat.broadcast_tree_arity = 0;
  auto tree = cfg(4, BackendKind::Parsec);
  tree.broadcast_tree_arity = 4;
  const auto rf = broadcast_run(flat, 3);
  const auto rt_ = broadcast_run(tree, 3);
  EXPECT_EQ(rf.cs.messages, rt_.cs.messages);
  EXPECT_EQ(rf.cs.serializations, rt_.cs.serializations);
  EXPECT_EQ(rf.cs.serialize_hits, rt_.cs.serialize_hits);
  EXPECT_EQ(rt_.cs.broadcast_forwards, 0u);
  EXPECT_EQ(rf.root_nic_sends, rt_.root_nic_sends);
  EXPECT_EQ(rf.makespan, rt_.makespan);  // bit-identical timeline
}

// ---- tree-routed split-metadata broadcast ----

TEST(TreeBroadcast, SplitmdForwardsFetchPayloadFromTheParent) {
  // Tile broadcast to 7 remote ranks, arity 2. Each tree edge is one
  // splitmd transfer; children RMA-fetch from their parent's landed object,
  // so the root serves only its two children: 2 metadata sends + 2 one-sided
  // payload reads = 4 injections, and the archive path is never touched.
  auto c = cfg(8, BackendKind::Parsec);
  c.broadcast_tree_arity = 2;
  World w(c);
  Edge<Int1, Tile> in("in"), out_e("out");
  auto tt = make_tt(w,
                    [](const Int1&, Tile& t, std::tuple<Out<Int1, Tile>>& out) {
                      std::vector<Int1> keys;
                      for (int i = 1; i <= 7; ++i) keys.push_back(Int1{i});
                      ttg::broadcast<0>(keys, t, out);
                    },
                    edges(in), edges(out_e), "bcaster");
  tt->set_keymap([](const Int1&) { return 0; });
  int got = 0;
  auto sink = make_sink(w, out_e, [&](const Int1&, Tile& t) {
    EXPECT_DOUBLE_EQ(t(0, 1), 2.75);
    ++got;
  });
  sink->set_keymap([](const Int1& k) { return k.i; });
  make_graph_executable(*tt);
  make_graph_executable(*sink);
  Tile t(4, 4);
  t(0, 1) = 2.75;
  tt->invoke(Int1{0}, std::move(t));
  w.fence();
  EXPECT_EQ(got, 7);
  EXPECT_EQ(w.comm().stats().splitmd_sends, 7u);
  EXPECT_EQ(w.comm().stats().broadcast_forwards, 5u);
  EXPECT_EQ(w.comm().stats().serializations, 0u);
  EXPECT_EQ(w.network().nic_sends(0), 4u);
  EXPECT_EQ(w.data_tracker().rank_stats(0).allocs, 1u);
  EXPECT_EQ(w.data_tracker().live_handles(), 0u);
}

// ---- eager-AM coalescing ----

rt::CommStats coalesce_run(WorldConfig c, int nmsgs) {
  World w(c);
  Edge<Int1, std::vector<double>> in("in"), out_e("out");
  auto tt = make_tt(
      w,
      [nmsgs](const Int1&, std::vector<double>& v,
              std::tuple<Out<Int1, std::vector<double>>>& out) {
        // Per-key sends within one task body: a burst of small AMs all
        // aimed at rank 1.
        for (int i = 1; i <= nmsgs; ++i) ttg::send<0>(Int1{i}, v, out);
      },
      edges(in), edges(out_e), "burst");
  tt->set_keymap([](const Int1&) { return 0; });
  int got = 0;
  auto sink = make_sink(w, out_e, [&](const Int1&, std::vector<double>& v) {
    EXPECT_EQ(v, (std::vector<double>{3.25, -1.0}));
    ++got;
  });
  sink->set_keymap([](const Int1&) { return 1; });
  make_graph_executable(*tt);
  make_graph_executable(*sink);
  tt->invoke(Int1{0}, std::vector<double>{3.25, -1.0});
  w.fence();
  EXPECT_EQ(got, nmsgs);
  EXPECT_EQ(w.data_tracker().live_handles(), 0u);
  return w.comm().stats();
}

TEST(AmCoalescing, BurstToOneRankBatchesBehindTheFirstAm) {
  // 5 small AMs to rank 1 inside one flush window: the first ships
  // immediately (opening the window), the other 4 ride one batched wire
  // transfer. Logical message accounting is unchanged.
  auto c = cfg(2, BackendKind::Parsec);
  c.am_flush_window = 1.0e-3;  // generous: the whole burst lands inside it
  const auto cs = coalesce_run(c, 5);
  EXPECT_EQ(cs.messages, 5u);
  EXPECT_EQ(cs.am_batches, 1u);
  EXPECT_EQ(cs.batched_msgs, 4u);
}

TEST(AmCoalescing, MadnessDefaultKeepsPerMessageWires) {
  const auto cs = coalesce_run(cfg(2, BackendKind::Madness), 5);
  EXPECT_EQ(cs.messages, 5u);
  EXPECT_EQ(cs.am_batches, 0u);
  EXPECT_EQ(cs.batched_msgs, 0u);
}

TEST(AmCoalescing, SingleFollowerFlushIsAPlainSend) {
  // 2 AMs: the second waits out the window alone; flushing a batch of one
  // is an ordinary wire send, not a counted batch.
  auto c = cfg(2, BackendKind::Parsec);
  c.am_flush_window = 1.0e-3;
  const auto cs = coalesce_run(c, 2);
  EXPECT_EQ(cs.messages, 2u);
  EXPECT_EQ(cs.am_batches, 0u);
  EXPECT_EQ(cs.batched_msgs, 0u);
}

// ---- recovery: per-hop ack/retransmit under fault injection ----

TEST(TreeBroadcast, RecoversDroppedHopsAndStaysReproducible) {
  for (const auto backend : {BackendKind::Parsec, BackendKind::Madness}) {
    auto c = cfg(16, backend);
    c.broadcast_tree_arity = 2;  // route through interior ranks on both
    c.faults = sim::FaultPlan::parse("drop=0.2", 7);
    const auto r1 = broadcast_run(c, 15);
    // Every key delivered exactly once despite dropped hops/acks; nothing
    // gave up, and the per-hop retransmit path actually fired.
    for (int k = 1; k <= 15; ++k)
      EXPECT_EQ(r1.deliveries[static_cast<std::size_t>(k)], 1)
          << "backend=" << rt::to_string(backend);
    EXPECT_EQ(r1.cs.dead_letters, 0u);
    EXPECT_GT(r1.cs.retries, 0u);
    EXPECT_EQ(r1.live_handles, 0u);
    // Seeded fault runs are bit-reproducible: a second identical world
    // replays the same drops, retries, and final clock.
    const auto r2 = broadcast_run(c, 15);
    EXPECT_EQ(r1.cs.retries, r2.cs.retries);
    EXPECT_EQ(r1.cs.acks, r2.cs.acks);
    EXPECT_EQ(r1.cs.recovered_msgs, r2.cs.recovered_msgs);
    EXPECT_EQ(r1.ns.drops, r2.ns.drops);
    EXPECT_EQ(r1.makespan, r2.makespan);  // to the bit
  }
}

// ---- application numerics: routing must never change payloads ----

TEST(Numerics, PotrfBitIdenticalAcrossFlatAndTreeRouting) {
  support::Rng rng(42);
  auto a = linalg::random_spd(rng, 256, 32);
  auto ref = linalg::dense_cholesky(a.to_dense());
  auto run = [&](int arity, std::uint64_t* forwards = nullptr) {
    auto c = cfg(8, BackendKind::Parsec);
    c.broadcast_tree_arity = arity;
    World w(c);
    auto res = apps::cholesky::run(w, a);
    if (forwards != nullptr) *forwards = w.comm().stats().broadcast_forwards;
    return res;
  };
  std::uint64_t forwards = 0;
  const auto flat = run(0);
  const auto tree = run(2, &forwards);
  EXPECT_GT(forwards, 0u);  // the tree plane was actually exercised
  const Tile df = flat.matrix.to_dense();
  const Tile dt = tree.matrix.to_dense();
  // Store-and-forward ships the identical serialized bytes every hop and
  // POTRF's per-tile accumulation order is fixed by the dependence chain,
  // so the factor agrees to the last bit.
  EXPECT_EQ(df.data(), dt.data());
  EXPECT_LT(df.max_abs_diff(ref), 1e-9);
}

TEST(Numerics, BspmmDeterministicPerRoutingAndConsistentAcross) {
  sparse::YukawaParams p;
  p.natoms = 24;
  p.max_tile = 32;
  auto a = sparse::yukawa_matrix(p);
  auto run = [&](int arity) {
    auto c = cfg(4, BackendKind::Parsec);
    c.broadcast_tree_arity = arity;
    World w(c);
    apps::bspmm::Options opt;
    auto res = apps::bspmm::run(w, a, a, opt);
    EXPECT_EQ(w.data_tracker().live_handles(), 0u);
    return res;
  };
  const auto flat = run(0);
  const auto tree = run(4);
  // Each routing mode is bit-deterministic run to run...
  EXPECT_EQ(tree.c.to_dense().data(), run(4).c.to_dense().data());
  EXPECT_EQ(flat.c.to_dense().data(), run(0).c.to_dense().data());
  // ...and across modes the streaming GEMM reductions see tree-dependent
  // arrival order, so agreement is to rounding, not to the bit.
  EXPECT_LT(flat.c.to_dense().max_abs_diff(tree.c.to_dense()), 1e-12);
  EXPECT_GT(flat.c.nnz_tiles(), 0u);
}

}  // namespace
