// Unit tests for the runtime substrate: scheduler semantics, world/rank
// context, backend communication engines, and the BSP executor.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/bsp.hpp"
#include "runtime/world.hpp"

namespace {

using namespace ttg;
using rt::BackendKind;
using rt::BspExecutor;
using rt::World;
using rt::WorldConfig;

WorldConfig small_world(BackendKind b = BackendKind::Parsec, int nranks = 2) {
  WorldConfig cfg;
  cfg.machine = sim::hawk();
  cfg.machine.cores_per_node = 2;
  cfg.nranks = nranks;
  cfg.backend = b;
  return cfg;
}

TEST(Scheduler, RunsTasksOnWorkers) {
  World w(small_world());
  int done = 0;
  w.scheduler(0).submit(0, 1.0, [&] { ++done; });
  w.scheduler(0).submit(0, 1.0, [&] { ++done; });
  w.scheduler(0).submit(0, 1.0, [&] { ++done; });
  const double t = w.fence();
  EXPECT_EQ(done, 3);
  // 3 unit tasks on 2 workers: makespan 2.
  EXPECT_DOUBLE_EQ(t, 2.0);
  EXPECT_EQ(w.scheduler(0).tasks_run(), 3u);
  EXPECT_DOUBLE_EQ(w.scheduler(0).busy_time(), 3.0);
}

TEST(Scheduler, PriorityOrdersQueue) {
  auto cfg = small_world();
  cfg.machine.cores_per_node = 1;
  World w(cfg);
  std::vector<int> order;
  // Submit a blocker so the rest queue up, then they should pop by priority.
  w.scheduler(0).submit(0, 1.0, [&] { order.push_back(-1); });
  w.scheduler(0).submit(1, 1.0, [&] { order.push_back(1); });
  w.scheduler(0).submit(3, 1.0, [&] { order.push_back(3); });
  w.scheduler(0).submit(2, 1.0, [&] { order.push_back(2); });
  w.fence();
  EXPECT_EQ(order, (std::vector<int>{-1, 3, 2, 1}));
}

TEST(Scheduler, FifoAmongEqualPriorities) {
  auto cfg = small_world();
  cfg.machine.cores_per_node = 1;
  World w(cfg);
  std::vector<int> order;
  w.scheduler(0).submit(0, 1.0, [&] { order.push_back(0); });
  for (int i = 1; i <= 4; ++i)
    w.scheduler(0).submit(7, 1.0, [&order, i] { order.push_back(i); });
  w.fence();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, CrossJobTieBreakIsDeterministic) {
  // Equal-priority tasks of different jobs pop in (priority desc, job id
  // asc, enqueue seq asc) order under Strict fairness — submission
  // interleaving across jobs must not perturb the order.
  auto cfg = small_world();
  cfg.machine.cores_per_node = 1;
  World w(cfg);
  auto& s = w.scheduler(0);
  std::vector<std::pair<int, int>> order;  // (job, tag)
  s.submit(0, 1.0, [&] { order.emplace_back(0, 0); });  // blocker
  s.submit(rt::JobId{2}, 5, 1.0, [&] { order.emplace_back(2, 0); });
  s.submit(rt::JobId{1}, 5, 1.0, [&] { order.emplace_back(1, 0); });
  s.submit(rt::JobId{3}, 7, 1.0, [&] { order.emplace_back(3, 0); });
  s.submit(rt::JobId{1}, 5, 1.0, [&] { order.emplace_back(1, 1); });
  s.submit(rt::JobId{2}, 5, 1.0, [&] { order.emplace_back(2, 1); });
  w.fence();
  const std::vector<std::pair<int, int>> want{
      {0, 0},          // blocker
      {3, 0},          // priority 7 beats everything
      {1, 0}, {1, 1},  // then job 1's priority-5 tasks, FIFO
      {2, 0}, {2, 1},  // then job 2's, FIFO
  };
  EXPECT_EQ(order, want);
}

TEST(Scheduler, WeightedRoundRobinInterleavesByWeight) {
  auto cfg = small_world();
  cfg.machine.cores_per_node = 1;
  World w(cfg);
  auto& s = w.scheduler(0);
  s.set_fairness(rt::FairnessMode::WeightedRR);
  s.configure_job(rt::JobId{1}, /*weight=*/1, /*inflight_cap=*/0);
  s.configure_job(rt::JobId{2}, /*weight=*/2, /*inflight_cap=*/0);
  std::vector<int> order;
  s.submit(0, 1.0, [&] { order.push_back(0); });  // blocker
  for (int i = 0; i < 3; ++i) {
    s.submit(rt::JobId{1}, 0, 1.0, [&] { order.push_back(1); });
    s.submit(rt::JobId{2}, 0, 1.0, [&] { order.push_back(2); });
  }
  w.fence();
  // Credit rounds: job 1 gets 1 slot, job 2 gets 2 per round (jobs scanned
  // in ascending id within a round).
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 2, 1, 2, 1}));
}

TEST(Scheduler, InflightCapLimitsConcurrency) {
  auto cfg = small_world();  // 2 workers on rank 0
  World w(cfg);
  auto& s = w.scheduler(0);
  s.configure_job(rt::JobId{1}, /*weight=*/1, /*inflight_cap=*/1);
  for (int i = 0; i < 4; ++i) s.submit(rt::JobId{1}, 0, 1.0, [] {});
  const double t = w.fence();
  const auto& jc = s.job_counters(rt::JobId{1});
  EXPECT_EQ(jc.tasks_run, 4u);
  EXPECT_EQ(jc.max_inflight, 1);
  EXPECT_DOUBLE_EQ(t, 4.0);  // fully serialized despite 2 workers
}

TEST(Scheduler, ChargeExtendsWorkerBusyTime) {
  auto cfg = small_world();
  cfg.machine.cores_per_node = 1;
  World w(cfg);
  w.scheduler(0).submit(0, 1.0, [&] {
    EXPECT_DOUBLE_EQ(w.scheduler(0).charge(0.5), 0.5);
    EXPECT_DOUBLE_EQ(w.scheduler(0).charge(0.25), 0.75);
  });
  w.scheduler(0).submit(0, 1.0, [] {});
  const double t = w.fence();
  EXPECT_DOUBLE_EQ(t, 2.75);  // 1 + 0.75 post-body + 1
}

TEST(Scheduler, ChargeOutsideTaskIsFree) {
  World w(small_world());
  EXPECT_DOUBLE_EQ(w.scheduler(0).charge(123.0), 0.0);
}

TEST(World, RankContextNestsAndRestores) {
  World w(small_world(BackendKind::Parsec, 4));
  EXPECT_EQ(w.rank(), 0);
  w.run_as(2, [&] {
    EXPECT_EQ(w.rank(), 2);
    w.run_as(3, [&] { EXPECT_EQ(w.rank(), 3); });
    EXPECT_EQ(w.rank(), 2);
  });
  EXPECT_EQ(w.rank(), 0);
}

TEST(World, BackendSelection) {
  World wp(small_world(BackendKind::Parsec));
  World wm(small_world(BackendKind::Madness));
  EXPECT_STREQ(wp.comm().name(), "parsec");
  EXPECT_STREQ(wm.comm().name(), "madness");
  EXPECT_TRUE(wp.comm().supports_splitmd());
  EXPECT_FALSE(wm.comm().supports_splitmd());
  EXPECT_TRUE(wp.comm().zero_copy_local());
  EXPECT_FALSE(wm.comm().zero_copy_local());
  // MADNESS pays more per task (futures) than PaRSEC.
  EXPECT_GT(wm.comm().task_overhead(), wp.comm().task_overhead());
}

TEST(World, SplitmdCanBeDisabled) {
  auto cfg = small_world();
  cfg.enable_splitmd = false;
  World w(cfg);
  EXPECT_FALSE(w.comm().supports_splitmd());
}

TEST(CommEngines, SendSideCpuProfiles) {
  World wp(small_world(BackendKind::Parsec));
  World wm(small_world(BackendKind::Madness));
  const std::size_t big = 1 << 20;
  // PaRSEC's splitmd/trivial paths avoid staging copies; MADNESS always
  // serializes whole objects.
  EXPECT_LT(wp.comm().send_side_cpu(big, ser::Protocol::SplitMetadata),
            wm.comm().send_side_cpu(big, ser::Protocol::SplitMetadata));
  EXPECT_LT(wp.comm().send_side_cpu(big, ser::Protocol::Trivial),
            wm.comm().send_side_cpu(big, ser::Protocol::Trivial));
  // Archive types pay a copy on both engines.
  EXPECT_GT(wp.comm().send_side_cpu(big, ser::Protocol::Archive),
            wp.comm().send_side_cpu(big, ser::Protocol::Trivial));
}

TEST(CommEngines, MessageDeliveryEntersDestination) {
  World w(small_world(BackendKind::Parsec, 2));
  bool delivered = false;
  w.comm().send_message(0, 1, 4096, [&] { delivered = true; });
  w.fence();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(w.comm().stats().messages, 1u);
}

TEST(CommEngines, SplitmdProtocolPhases) {
  World w(small_world(BackendKind::Parsec, 2));
  std::vector<int> phases;
  w.comm().send_splitmd(0, 1, 64, 1 << 20, [&] { phases.push_back(1); },
                        [&] { phases.push_back(2); }, [&] { phases.push_back(3); });
  w.fence();
  EXPECT_EQ(phases, (std::vector<int>{1, 2, 3}));  // metadata, payload, release
}

TEST(CommEngines, MadnessAmServerSerializes) {
  // Two large messages to the same destination finish later than one: the
  // single AM server thread deserializes them one after the other.
  auto run_one = [](int nmsgs) {
    World w(small_world(BackendKind::Madness, 3));
    for (int i = 0; i < nmsgs; ++i) w.comm().send_message(1 + (i % 2), 0, 1 << 20, [] {});
    return w.fence();
  };
  const double one = run_one(1);
  const double two = run_one(2);
  EXPECT_GT(two, one * 1.2);
}

TEST(Bsp, ListScheduleMakespan) {
  EXPECT_DOUBLE_EQ(BspExecutor::list_schedule({4, 3, 2, 1}, 2), 5.0);
  EXPECT_DOUBLE_EQ(BspExecutor::list_schedule({1, 1, 1, 1}, 4), 1.0);
  EXPECT_DOUBLE_EQ(BspExecutor::list_schedule({}, 4), 0.0);
  EXPECT_DOUBLE_EQ(BspExecutor::list_schedule({10}, 64), 10.0);
}

TEST(Bsp, ComputePhaseBarriers) {
  BspExecutor bsp(sim::hawk(), 2);
  bsp.compute_phase({1.0, 3.0});
  EXPECT_GE(bsp.clock(0), 3.0);  // barrier synchronized to the max
  EXPECT_GE(bsp.clock(1), 3.0);
}

TEST(Bsp, BroadcastTreeDepth) {
  BspExecutor b2(sim::hawk(), 2), b8(sim::hawk(), 8);
  b2.broadcast(0, 1 << 20);
  b8.broadcast(0, 1 << 20);
  EXPECT_GT(b8.now(), b2.now());  // log2(8) = 3 hops vs 1
  EXPECT_EQ(b2.messages(), 1u);
  EXPECT_EQ(b8.messages(), 7u);
}

TEST(Bsp, P2pAdvancesBothClocks) {
  BspExecutor bsp(sim::hawk(), 2);
  bsp.compute(0, 5.0);
  bsp.p2p(0, 1, 1 << 20);
  EXPECT_GT(bsp.clock(1), 5.0);  // receiver waited for the sender
  EXPECT_GT(bsp.bytes_sent(), 0u);
}

TEST(Bsp, FabricTimeScalesWithBytes) {
  BspExecutor bsp(sim::hawk(), 16);
  EXPECT_GT(bsp.fabric_time(1ull << 30), bsp.fabric_time(1ull << 20));
}

TEST(World, FlopsAccounting) {
  World w(small_world());
  w.add_flops(1e9);
  w.add_flops(5e8);
  EXPECT_DOUBLE_EQ(w.total_flops(), 1.5e9);
}

TEST(Trace, RecordsNamedTasks) {
  World w(small_world());
  w.enable_tracing();
  w.scheduler(0).submit(1, 2.0, "alpha", [] {});
  w.scheduler(0).submit(0, 3.0, "beta", [] {});
  w.scheduler(1).submit(0, 1.0, "alpha", [] {});
  w.fence();
  const auto& rec = w.tracer().records();
  ASSERT_EQ(rec.size(), 3u);
  auto sum = w.tracer().summarize();
  EXPECT_EQ(sum["alpha"].count, 2u);
  EXPECT_DOUBLE_EQ(sum["alpha"].total_time, 3.0);
  EXPECT_DOUBLE_EQ(sum["alpha"].max_time, 2.0);
  EXPECT_EQ(sum["beta"].count, 1u);
}

TEST(Trace, StartEndSpanIncludesCharges) {
  auto cfg = small_world();
  cfg.machine.cores_per_node = 1;
  World w(cfg);
  w.enable_tracing();
  w.scheduler(0).submit(0, 1.0, "t", [&] { w.scheduler(0).charge(0.5); });
  w.fence();
  const auto& r = w.tracer().records().at(0);
  EXPECT_DOUBLE_EQ(r.start, 0.0);
  EXPECT_DOUBLE_EQ(r.end, 1.5);
}

TEST(Trace, UnnamedTasksNotRecorded) {
  World w(small_world());
  w.enable_tracing();
  w.scheduler(0).submit(0, 1.0, [] {});
  w.fence();
  EXPECT_EQ(w.tracer().size(), 0u);
}

TEST(Trace, BusyPerRankAndUtilization) {
  World w(small_world());  // 2 ranks x 2 workers
  w.enable_tracing();
  w.scheduler(0).submit(0, 2.0, "x", [] {});
  w.scheduler(1).submit(0, 2.0, "x", [] {});
  const double makespan = w.fence();
  auto busy = w.tracer().busy_per_rank(2);
  EXPECT_DOUBLE_EQ(busy[0], 2.0);
  EXPECT_DOUBLE_EQ(busy[1], 2.0);
  EXPECT_NEAR(w.tracer().utilization(2, 2, makespan), 0.5, 1e-12);
}

TEST(Trace, SummaryTableRenders) {
  World w(small_world());
  w.enable_tracing();
  w.scheduler(0).submit(0, 1.0, "kernel", [] {});
  w.fence();
  const auto s = w.tracer().summary_table();
  EXPECT_NE(s.find("kernel"), std::string::npos);
  EXPECT_NE(s.find("count"), std::string::npos);
}

TEST(Trace, TtTasksCarryTemplateNames) {
  // End-to-end: TT-created tasks appear under the template's name.
  World w(small_world());
  w.enable_tracing();
  // (exercised through the ttg layer in test_ttg_core; here via scheduler)
  w.scheduler(0).submit(2, 1.0, "POTRF", [] {});
  w.scheduler(0).submit(1, 1.0, "TRSM", [] {});
  w.fence();
  auto sum = w.tracer().summarize();
  EXPECT_EQ(sum.size(), 2u);
}

}  // namespace
