// Cross-cutting integration tests: determinism, backend equivalence, and
// the headline performance relationships the paper's figures rest on.
#include <gtest/gtest.h>

#include "apps/cholesky/cholesky_ttg.hpp"
#include "apps/fw_apsp/fw_ttg.hpp"
#include "apps/mra/mra_ttg.hpp"
#include "baselines/fw_mpi_omp.hpp"
#include "ttg/ttg.hpp"

namespace {

using namespace ttg;

TEST(Determinism, IdenticalRunsProduceIdenticalMakespans) {
  auto run_once = [] {
    auto ghost = linalg::ghost_matrix(512 * 8, 512);
    rt::WorldConfig cfg;
    cfg.nranks = 4;
    rt::World w(cfg);
    apps::cholesky::Options opt;
    opt.collect = false;
    return apps::cholesky::run(w, ghost, opt).makespan;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Determinism, FwIdenticalAcrossRuns) {
  auto run_once = [] {
    auto ghost = linalg::ghost_matrix(2048, 128);
    rt::WorldConfig cfg;
    cfg.nranks = 4;
    rt::World w(cfg);
    apps::fw::Options opt;
    opt.collect = false;
    return apps::fw::run(w, ghost, opt).makespan;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(BackendEquivalence, SameNumericalResults) {
  // "all TTG programs developed in this work are backend independent":
  // both backends must compute bit-identical numerics, only timing differs.
  support::Rng rng(55);
  auto a = linalg::random_spd(rng, 96, 32);
  linalg::Tile lp, lm;
  {
    rt::WorldConfig cfg;
    cfg.nranks = 4;
    cfg.backend = rt::BackendKind::Parsec;
    rt::World w(cfg);
    lp = apps::cholesky::run(w, a).matrix.to_dense();
  }
  {
    rt::WorldConfig cfg;
    cfg.nranks = 4;
    cfg.backend = rt::BackendKind::Madness;
    rt::World w(cfg);
    lm = apps::cholesky::run(w, a).matrix.to_dense();
  }
  EXPECT_DOUBLE_EQ(lp.max_abs_diff(lm), 0.0);
}

TEST(BackendPerformance, ParsecNoSlowerThanMadnessOnCommBoundRuns) {
  // The paper's consistent finding across FW and MRA.
  auto ghost = linalg::ghost_matrix(4096, 128);
  double tp, tm;
  {
    rt::WorldConfig cfg;
    cfg.nranks = 16;
    cfg.backend = rt::BackendKind::Parsec;
    rt::World w(cfg);
    apps::fw::Options opt;
    opt.collect = false;
    tp = apps::fw::run(w, ghost, opt).makespan;
  }
  {
    rt::WorldConfig cfg;
    cfg.nranks = 16;
    cfg.backend = rt::BackendKind::Madness;
    rt::World w(cfg);
    apps::fw::Options opt;
    opt.collect = false;
    tm = apps::fw::run(w, ghost, opt).makespan;
  }
  EXPECT_LE(tp, tm);
}

TEST(Scaling, CholeskyWeakScalingEfficiencyIsHigh) {
  // Weak scaling: GFLOP/s should grow near-linearly for the task-based
  // implementation (Fig. 5's top group).
  auto run_nodes = [](int nodes) {
    const int per_node = 512 * 8;
    const int n = static_cast<int>(per_node * std::sqrt(static_cast<double>(nodes)));
    auto ghost = linalg::ghost_matrix(n, 512);
    rt::WorldConfig cfg;
    cfg.nranks = nodes;
    rt::World w(cfg);
    apps::cholesky::Options opt;
    opt.collect = false;
    return apps::cholesky::run(w, ghost, opt).gflops;
  };
  const double g1 = run_nodes(1);
  const double g4 = run_nodes(4);
  EXPECT_GT(g4, 2.0 * g1);  // at least 50% weak-scaling efficiency
}

TEST(Scaling, FwStrongScalingSpeedup) {
  auto run_nodes = [](int nodes) {
    auto ghost = linalg::ghost_matrix(8192, 128);
    rt::WorldConfig cfg;
    cfg.nranks = nodes;
    rt::World w(cfg);
    apps::fw::Options opt;
    opt.collect = false;
    return apps::fw::run(w, ghost, opt).makespan;
  };
  const double t1 = run_nodes(1);
  const double t4 = run_nodes(4);
  const double t16 = run_nodes(16);
  EXPECT_GT(t1 / t4, 2.0);
  EXPECT_GT(t4 / t16, 1.5);
}

TEST(Scaling, MraStrongScaling) {
  auto fns = ttg::mra::random_gaussians(16, 3.0e4, 31);
  ttg::mra::MraContext ctx(6, fns);
  auto run_nodes = [&](int nodes) {
    rt::WorldConfig cfg;
    cfg.nranks = nodes;
    rt::World w(cfg);
    apps::mra::Options opt;
    opt.tol = 1e-6;
    return apps::mra::run(w, ctx, opt).makespan;
  };
  EXPECT_GT(run_nodes(1) / run_nodes(8), 2.0);
}

TEST(Ablation, SplitmdReducesCommBoundMakespan) {
  // The splitmd protocol (paper Section II-C) avoids serialization copies;
  // disabling it must not make communication-bound runs faster.
  auto run = [](bool splitmd) {
    auto ghost = linalg::ghost_matrix(4096, 128);
    rt::WorldConfig cfg;
    cfg.nranks = 16;
    cfg.enable_splitmd = splitmd;
    rt::World w(cfg);
    apps::fw::Options opt;
    opt.collect = false;
    return apps::fw::run(w, ghost, opt).makespan;
  };
  EXPECT_LE(run(true), run(false));
}

TEST(Ablation, OptimizedBroadcastCutsTransfersWithoutSlowdown) {
  auto run = [](bool optimized) {
    auto ghost = linalg::ghost_matrix(512 * 12, 512);
    rt::WorldConfig cfg;
    cfg.nranks = 16;
    cfg.optimized_broadcast = optimized;
    rt::World w(cfg);
    apps::cholesky::Options opt;
    opt.collect = false;
    const double t = apps::cholesky::run(w, ghost, opt).makespan;
    const auto& st = w.comm().stats();
    return std::pair<double, std::uint64_t>(t, st.messages + st.splitmd_sends);
  };
  const auto [t_on, m_on] = run(true);
  const auto [t_off, m_off] = run(false);
  // The hard invariant: coalescing strictly reduces wire transfers. The
  // makespan gain depends on how communication-bound the run is; require
  // "no meaningful slowdown" rather than a strict win.
  EXPECT_LT(m_on, m_off);
  EXPECT_LE(t_on, t_off * 1.02);
}

}  // namespace
