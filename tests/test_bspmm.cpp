// Integration tests of block-sparse GEMM: structure generator, TTG SUMMA
// with both feedback loops, and the DBCSR comparator.
#include <gtest/gtest.h>

#include "apps/bspmm/bspmm_ttg.hpp"
#include "baselines/dbcsr_like.hpp"
#include "linalg/kernels.hpp"
#include "sparse/yukawa_gen.hpp"
#include "ttg/ttg.hpp"

namespace {

using namespace ttg;
using sparse::BlockSparseMatrix;

sparse::YukawaParams small_params() {
  sparse::YukawaParams p;
  p.natoms = 40;
  p.max_tile = 64;
  p.box = 60.0;
  p.screening_length = 5.0;
  p.threshold = 1e-3;
  p.seed = 7;
  return p;
}

double compare(const BlockSparseMatrix& ref, const BlockSparseMatrix& got) {
  double err = 0.0;
  for (auto [i, j] : ref.nonzeros()) {
    if (ref.at(i, j).norm() < 1e-300) continue;
    EXPECT_TRUE(got.has(i, j)) << "missing C(" << i << "," << j << ")";
    if (got.has(i, j)) err = std::max(err, ref.at(i, j).max_abs_diff(got.at(i, j)));
  }
  return err;
}

TEST(BlockSparse, BasicOps) {
  BlockSparseMatrix m({4, 4, 2});
  EXPECT_EQ(m.ntiles(), 3);
  EXPECT_EQ(m.n(), 10);
  EXPECT_FALSE(m.has(0, 1));
  m.set(0, 1, linalg::Tile(4, 4));
  EXPECT_TRUE(m.has(0, 1));
  EXPECT_EQ(m.nnz_tiles(), 1u);
  EXPECT_DOUBLE_EQ(m.occupancy(), 1.0 / 9.0);
  EXPECT_EQ(m.nnz_elements(), 16u);
  EXPECT_EQ(m.row_nonzeros(0), std::vector<int>{1});
  EXPECT_EQ(m.col_nonzeros(1), std::vector<int>{0});
  EXPECT_DEATH(m.set(0, 2, linalg::Tile(4, 4)), "shape");
}

TEST(BlockSparse, ReferenceMultiplyMatchesDense) {
  auto a = sparse::yukawa_matrix(small_params());
  auto c = sparse::multiply_reference(a, a);
  // Compare against the dense product.
  auto ad = a.to_dense();
  linalg::Tile cd(ad.rows(), ad.cols());
  linalg::gemm_nn_acc(cd, ad, ad);
  double err = 0;
  auto got = c.to_dense();
  for (int i = 0; i < cd.rows(); ++i)
    for (int j = 0; j < cd.cols(); ++j)
      err = std::max(err, std::abs(cd(i, j) - got(i, j)));
  EXPECT_LT(err, 1e-10);
}

TEST(Yukawa, GeneratorStatistics) {
  auto p = small_params();
  auto m = sparse::yukawa_matrix(p);
  EXPECT_GT(m.ntiles(), 10);
  EXPECT_GT(m.nnz_tiles(), 0u);
  for (int i = 0; i < m.ntiles(); ++i) {
    // Panels respect the cap unless a single atom's basis already exceeds
    // it (atom bases are 40..70 functions).
    EXPECT_LE(m.panel(i), std::max(p.max_tile, 70));
    EXPECT_TRUE(m.has(i, i));  // diagonal always survives screening
  }
  // Deterministic for a fixed seed.
  auto m2 = sparse::yukawa_matrix(p);
  EXPECT_EQ(m.nnz_tiles(), m2.nnz_tiles());
  const auto report = sparse::structure_report(m);
  EXPECT_NE(report.find("occupancy"), std::string::npos);
}

TEST(Yukawa, GhostModeMirrorsStructure) {
  auto p = small_params();
  auto real = sparse::yukawa_matrix(p);
  p.ghost = true;
  auto ghost = sparse::yukawa_matrix(p);
  EXPECT_EQ(real.nnz_tiles(), ghost.nnz_tiles());
  EXPECT_EQ(real.panels(), ghost.panels());
  for (auto [i, j] : real.nonzeros()) EXPECT_TRUE(ghost.at(i, j).is_ghost());
}

struct Case {
  int nranks;
  rt::BackendKind backend;
  int read_window;
  int k_window;
};

class BspmmCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(BspmmCorrectness, MatchesReference) {
  const auto p = GetParam();
  auto a = sparse::yukawa_matrix(small_params());
  auto ref = sparse::multiply_reference(a, a);

  rt::WorldConfig cfg;
  cfg.nranks = p.nranks;
  cfg.backend = p.backend;
  rt::World world(cfg);
  apps::bspmm::Options opt;
  opt.read_window = p.read_window;
  opt.k_window = p.k_window;
  auto res = apps::bspmm::run(world, a, a, opt);
  EXPECT_LT(compare(ref, res.c), 1e-10);
  EXPECT_GT(res.tasks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BspmmCorrectness,
    ::testing::Values(Case{1, rt::BackendKind::Parsec, 64, 8},
                      Case{4, rt::BackendKind::Parsec, 64, 8},
                      Case{4, rt::BackendKind::Parsec, 4, 2},   // tight windows
                      Case{4, rt::BackendKind::Parsec, 1, 1},   // serialized loops
                      Case{3, rt::BackendKind::Parsec, 16, 4},  // odd grid
                      Case{4, rt::BackendKind::Madness, 64, 8},
                      Case{2, rt::BackendKind::Madness, 8, 3}));

TEST(Bspmm, MultiplyFlopsPositiveAndConsistent) {
  auto a = sparse::yukawa_matrix(small_params());
  const double f = sparse::multiply_flops(a, a);
  EXPECT_GT(f, 0.0);
  // Flops must not exceed the dense count.
  const double dense = 2.0 * std::pow(static_cast<double>(a.n()), 3);
  EXPECT_LE(f, dense);
}

TEST(Dbcsr, FeasibleGridsAndScaling) {
  auto p = small_params();
  p.ghost = true;
  auto a = sparse::yukawa_matrix(p);
  double prev = 1e300;
  for (int nodes : {1, 4, 16, 64}) {
    auto r = baselines::run_dbcsr(sim::hawk(), nodes, a, a);
    EXPECT_GT(r.gflops, 0.0);
    EXPECT_LE(r.makespan, prev * 1.001) << "nodes=" << nodes;
    prev = r.makespan;
  }
}

TEST(Dbcsr, ReplicationKicksInAtScale) {
  auto p = small_params();
  p.ghost = true;
  p.natoms = 120;
  auto a = sparse::yukawa_matrix(p);
  auto r = baselines::run_dbcsr(sim::hawk(), 256, a, a);
  EXPECT_GE(r.replication, 1);
}

}  // namespace
