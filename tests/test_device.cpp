// Heterogeneous device lane: cost-model placement + device residency.
//
// The load-bearing contract: device=Off IS the pre-device runtime — same
// makespans, same message counts, same numerics — even for TTs that
// registered a device op, and even though the collective tuning now derives
// from the machine model instead of per-backend constants. The golden rows
// below are the same pre-refactor captures test_steal.cpp pins; repeating
// them here keeps the device plane honest against them directly. On top:
// derived-tuning pins, deterministic greedy placement (serial, sharded,
// faulty), placement-invariant numerics, residency/eviction counters, the
// DataCopy staging lifecycle, and the fence-time residency reconciliation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/bspmm/bspmm_ttg.hpp"
#include "apps/cholesky/cholesky_ttg.hpp"
#include "apps/fw_apsp/fw_ttg.hpp"
#include "apps/mra/mra_ttg.hpp"
#include "linalg/matrix_gen.hpp"
#include "runtime/collective.hpp"
#include "sparse/yukawa_gen.hpp"
#include "support/rng.hpp"
#include "ttg/ttg.hpp"

namespace {

using namespace ttg;

// ---------------------------------------------------------------------------
// device=Off equivalence with the pre-device runtime (golden rows)
// ---------------------------------------------------------------------------

struct Golden {
  const char* app;
  const char* backend;
  double makespan;
  std::uint64_t messages;
  std::uint64_t splitmd_sends;
  std::uint64_t tasks;
  double checksum;
};

// Captured on the pre-device runtime (identical to test_steal.cpp's rows:
// the device plane and the machine-derived collective tuning must not move
// a single bit with placement Off).
constexpr Golden kGolden[] = {
    {"potrf", "parsec", 0.011019046033279654, 0ull, 38ull, 56ull,
     5341.2622308796535},
    {"fw", "parsec", 0.010114634948240147, 0ull, 128ull, 512ull,
     25938.648754752114},
    {"bspmm", "parsec", 0.0014136615217391184, 847ull, 1640ull, 18586ull,
     3.0506868746361206},
    {"mra", "parsec", 0.00034552836521739105, 1367ull, 352ull, 6272ull,
     6.0620249749848053e-06},
    {"potrf", "madness", 0.012440797165861498, 38ull, 0ull, 56ull,
     5341.2622308796535},
    {"fw", "madness", 0.011743691938095222, 128ull, 0ull, 512ull,
     25938.648754752114},
    {"bspmm", "madness", 0.0038405752449275398, 2487ull, 0ull, 18586ull,
     3.0506868746361206},
    {"mra", "madness", 0.00050195266086956421, 1064ull, 0ull, 6272ull,
     6.0620249749848036e-06},
};

const Golden& golden(const std::string& app, rt::BackendKind b) {
  for (const auto& g : kGolden)
    if (app == g.app && std::string(rt::to_string(b)) == g.backend) return g;
  ADD_FAILURE() << "no golden row for " << app;
  return kGolden[0];
}

void expect_golden(const Golden& g, double makespan, std::uint64_t messages,
                   std::uint64_t splitmd, std::uint64_t tasks, double checksum) {
  EXPECT_EQ(makespan, g.makespan) << g.app << "/" << g.backend;
  EXPECT_EQ(messages, g.messages) << g.app << "/" << g.backend;
  EXPECT_EQ(splitmd, g.splitmd_sends) << g.app << "/" << g.backend;
  EXPECT_EQ(tasks, g.tasks) << g.app << "/" << g.backend;
  EXPECT_EQ(checksum, g.checksum) << g.app << "/" << g.backend;
}

TEST(DeviceEquiv, PotrfOffMatchesPreDeviceGolden) {
  for (auto b : {rt::BackendKind::Parsec, rt::BackendKind::Madness}) {
    support::Rng rng(5);
    auto a = linalg::random_spd(rng, 1536, 256);
    rt::WorldConfig cfg;
    cfg.nranks = 4;
    cfg.backend = b;
    rt::World world(cfg);
    auto res = apps::cholesky::run(world, a);
    double cs = 0.0;
    for (int m = 0; m < res.matrix.ntiles(); ++m)
      for (int n = 0; n <= m; ++n) cs += res.matrix.tile(m, n).norm();
    expect_golden(golden("potrf", b), res.makespan, world.comm().stats().messages,
                  world.comm().stats().splitmd_sends, res.tasks, cs);
  }
}

TEST(DeviceEquiv, FwOffMatchesPreDeviceGolden) {
  for (auto b : {rt::BackendKind::Parsec, rt::BackendKind::Madness}) {
    support::Rng rng(11);
    auto w0 = linalg::random_adjacency(rng, 1024, 128, 0.25);
    rt::WorldConfig cfg;
    cfg.nranks = 4;
    cfg.backend = b;
    rt::World world(cfg);
    auto res = apps::fw::run(world, w0);
    double cs = 0.0;
    for (int i = 0; i < res.matrix.ntiles(); ++i)
      for (int j = 0; j < res.matrix.ntiles(); ++j)
        cs += res.matrix.tile(i, j).norm();
    expect_golden(golden("fw", b), res.makespan, world.comm().stats().messages,
                  world.comm().stats().splitmd_sends, res.tasks, cs);
  }
}

sparse::BlockSparseMatrix small_yukawa() {
  sparse::YukawaParams p;
  p.natoms = 40;
  p.max_tile = 64;
  p.box = 60.0;
  p.screening_length = 5.0;
  p.threshold = 1e-3;
  p.seed = 7;
  return sparse::yukawa_matrix(p);
}

TEST(DeviceEquiv, BspmmOffMatchesPreDeviceGolden) {
  auto a = small_yukawa();
  for (auto b : {rt::BackendKind::Parsec, rt::BackendKind::Madness}) {
    rt::WorldConfig cfg;
    cfg.nranks = 4;
    cfg.backend = b;
    rt::World world(cfg);
    auto res = apps::bspmm::run(world, a, a, {});
    double cs = 0.0;
    for (auto [i, j] : res.c.nonzeros()) cs += res.c.at(i, j).norm();
    expect_golden(golden("bspmm", b), res.makespan, world.comm().stats().messages,
                  world.comm().stats().splitmd_sends, res.tasks, cs);
  }
}

TEST(DeviceEquiv, MraOffMatchesPreDeviceGolden) {
  auto fns = ttg::mra::random_gaussians(8, 3.0e4, 2022);
  ttg::mra::MraContext ctx(6, fns);
  for (auto b : {rt::BackendKind::Parsec, rt::BackendKind::Madness}) {
    rt::WorldConfig cfg;
    cfg.nranks = 8;
    cfg.backend = b;
    rt::World world(cfg);
    apps::mra::Options opt;
    opt.tol = 1e-4;
    opt.rand_level = 2;
    auto res = apps::mra::run(world, ctx, opt);
    double cs = 0.0;
    for (const auto& [fid, n2] : res.norm2_compressed) cs += n2;
    for (const auto& [fid, n2] : res.norm2_reconstructed) cs += n2;
    expect_golden(golden("mra", b), res.makespan, world.comm().stats().messages,
                  world.comm().stats().splitmd_sends, res.tasks, cs);
  }
}

// ---------------------------------------------------------------------------
// machine-derived collective tuning (the constants the goldens ride on)
// ---------------------------------------------------------------------------

TEST(DerivedTuning, HawkAndSeawulfReproduceHistoricalConstants) {
  // The PaRSEC collective defaults used to be hard-coded {arity 4, window
  // 1 us, coalesce 4096 B}. They now derive from NIC bandwidth x AM CPU
  // (bandwidth-delay product) and must land on the exact same values for
  // both preset machines — bit-identical baselines depend on it.
  for (const auto& m : {sim::hawk(), sim::seawulf()}) {
    const auto t = rt::collective::derive_tuning(m);
    EXPECT_EQ(t.arity, 4) << m.name;
    EXPECT_EQ(t.window, 1.0e-6) << m.name;
    EXPECT_EQ(t.am_coalesce_max, 4096u) << m.name;
  }
}

TEST(DerivedTuning, ParsecPolicyUsesDerivedValues) {
  for (const auto& m : {sim::hawk(), sim::seawulf()}) {
    rt::WorldConfig cfg;
    cfg.machine = m;
    cfg.nranks = 2;
    rt::World world(cfg);
    const auto& pol = world.comm().collective();
    const auto t = rt::collective::derive_tuning(m);
    EXPECT_EQ(pol.tree_arity, t.arity);
    EXPECT_EQ(pol.am_flush_window, t.window);
    EXPECT_EQ(pol.reduce_arity, t.arity);
    EXPECT_EQ(pol.am_coalesce_max, t.am_coalesce_max);
  }
}

TEST(DerivedTuning, TracksTheMachineModel) {
  // A faster NIC (bigger bandwidth-delay product) must widen coalescing and
  // the tree arity; the derivation is monotone in nic_bw up to the
  // eager-threshold cap.
  sim::MachineModel m = sim::hawk();
  m.eager_threshold = 1 << 20;
  m.nic_bw = 200e9;  // bdp = 80 KB -> coalesce 128 KB capped at 512 KB
  const auto fat = rt::collective::derive_tuning(m);
  EXPECT_GT(fat.am_coalesce_max, 4096u);
  EXPECT_EQ(fat.arity, 8);  // clamped at the top
  m.nic_bw = 1e9;  // bdp = 400 B -> coalesce 512 B, arity clamped at 2
  const auto thin = rt::collective::derive_tuning(m);
  EXPECT_EQ(thin.am_coalesce_max, 512u);
  EXPECT_EQ(thin.arity, 2);
}

// ---------------------------------------------------------------------------
// greedy placement: determinism, numerics, counters
// ---------------------------------------------------------------------------

struct DeviceRun {
  double makespan = 0.0;
  std::uint64_t tasks = 0;
  double checksum = 0.0;
  rt::DeviceStats stats;
  double device_busy = 0.0;
};

DeviceRun potrf_device_run(rt::WorldConfig cfg, int dim = 1024) {
  // 4x4 tiles of the bench's 256-wide device character: big enough that
  // greedy offloads every TRSM/SYRK/GEMM with residency reuse, small enough
  // to keep the suite's dozen runs cheap.
  support::Rng rng(5);
  auto a = linalg::random_spd(rng, dim, 256);
  rt::World world(cfg);
  auto res = apps::cholesky::run(world, a);
  DeviceRun r;
  r.makespan = res.makespan;
  r.tasks = res.tasks;
  for (int m = 0; m < res.matrix.ntiles(); ++m)
    for (int n = 0; n <= m; ++n) r.checksum += res.matrix.tile(m, n).norm();
  for (int rank = 0; rank < world.nranks(); ++rank) {
    const auto& s = world.scheduler(rank).device_stats();
    r.stats.device_tasks += s.device_tasks;
    r.stats.host_tasks += s.host_tasks;
    r.stats.h2d_transfers += s.h2d_transfers;
    r.stats.h2d_bytes += s.h2d_bytes;
    r.stats.d2h_transfers += s.d2h_transfers;
    r.stats.d2h_bytes += s.d2h_bytes;
    r.stats.residency_hits += s.residency_hits;
    r.stats.residency_misses += s.residency_misses;
    r.stats.evictions += s.evictions;
    r.device_busy += world.scheduler(rank).device_busy();
  }
  return r;
}

rt::WorldConfig device_world(rt::DevicePlacement p) {
  rt::WorldConfig cfg;
  cfg.nranks = 4;
  cfg.device = p;
  return cfg;
}

TEST(DeviceDeterminism, GreedyRerunIsBitIdentical) {
  const DeviceRun a = potrf_device_run(device_world(rt::DevicePlacement::Greedy));
  const DeviceRun b = potrf_device_run(device_world(rt::DevicePlacement::Greedy));
  EXPECT_GT(a.stats.device_tasks, 0u);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.stats.device_tasks, b.stats.device_tasks);
  EXPECT_EQ(a.stats.h2d_bytes, b.stats.h2d_bytes);
  EXPECT_EQ(a.stats.residency_hits, b.stats.residency_hits);
  EXPECT_EQ(a.stats.evictions, b.stats.evictions);
  EXPECT_EQ(a.device_busy, b.device_busy);
}

// Own suite (not DeviceDeterminism) so the TSan CI leg can run exactly the
// thread-bearing device path, like StealSharded; 2x2 tiles keep it cheap
// under the sanitizer's slowdown.
TEST(DeviceSharded, SerialAndShardedAgree) {
  // Device lanes and residency maps are rank-local scheduler state, so the
  // sharded engine must replay identical placement decisions.
  rt::WorldConfig serial = device_world(rt::DevicePlacement::Greedy);
  rt::WorldConfig sharded = device_world(rt::DevicePlacement::Greedy);
  sharded.engine_lanes = 4;
  const DeviceRun a = potrf_device_run(serial, 512);
  const DeviceRun b = potrf_device_run(sharded, 512);
  EXPECT_GT(a.stats.device_tasks, 0u);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.stats.device_tasks, b.stats.device_tasks);
  EXPECT_EQ(a.stats.h2d_bytes, b.stats.h2d_bytes);
  EXPECT_EQ(a.stats.residency_hits, b.stats.residency_hits);
}

TEST(DeviceDeterminism, FaultyGreedyRerunIsBitIdentical) {
  // Stragglers scale host compute (and thus the host side of the placement
  // comparison); the decision stays deterministic under a seeded plan.
  rt::WorldConfig cfg = device_world(rt::DevicePlacement::Greedy);
  cfg.faults = sim::FaultPlan::parse("straggler=0:2", 42);
  const DeviceRun a = potrf_device_run(cfg);
  const DeviceRun b = potrf_device_run(cfg);
  EXPECT_GT(a.stats.device_tasks, 0u);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.stats.device_tasks, b.stats.device_tasks);
  EXPECT_EQ(a.stats.h2d_bytes, b.stats.h2d_bytes);
}

TEST(DeviceNumerics, PlacementInvariantAcrossAllPolicies) {
  const DeviceRun off = potrf_device_run(device_world(rt::DevicePlacement::Off));
  const DeviceRun greedy =
      potrf_device_run(device_world(rt::DevicePlacement::Greedy));
  const DeviceRun always =
      potrf_device_run(device_world(rt::DevicePlacement::Always));
  // Same factorization, same task count, bit-identical checksum: placement
  // moves kernels between planes, never changes the math.
  EXPECT_EQ(off.tasks, greedy.tasks);
  EXPECT_EQ(off.tasks, always.tasks);
  EXPECT_EQ(off.checksum, greedy.checksum);
  EXPECT_EQ(off.checksum, always.checksum);
  // Off must not touch the device plane.
  EXPECT_EQ(off.stats.device_tasks, 0u);
  EXPECT_EQ(off.stats.h2d_transfers, 0u);
  EXPECT_EQ(off.device_busy, 0.0);
  // The 512-tile kernels are device-worthy: greedy offloads and wins.
  EXPECT_GT(greedy.stats.device_tasks, 0u);
  EXPECT_GT(greedy.stats.residency_hits, 0u);
  EXPECT_LT(greedy.makespan, off.makespan);
}

TEST(DeviceCounters, TracerMirrorsSchedulerStats) {
  support::Rng rng(5);
  auto a = linalg::random_spd(rng, 1024, 256);
  rt::WorldConfig cfg = device_world(rt::DevicePlacement::Greedy);
  rt::World world(cfg);
  world.enable_tracing();
  apps::cholesky::run(world, a);
  rt::DeviceStats sched;
  for (int r = 0; r < world.nranks(); ++r) {
    const auto& s = world.scheduler(r).device_stats();
    sched.device_tasks += s.device_tasks;
    sched.h2d_transfers += s.h2d_transfers;
    sched.h2d_bytes += s.h2d_bytes;
    sched.d2h_transfers += s.d2h_transfers;
    sched.residency_hits += s.residency_hits;
    sched.residency_misses += s.residency_misses;
    sched.evictions += s.evictions;
  }
  EXPECT_GT(sched.device_tasks, 0u);
  const auto totals = world.tracer().totals();
  EXPECT_EQ(totals.device_tasks, sched.device_tasks);
  EXPECT_EQ(totals.h2d_transfers, sched.h2d_transfers);
  EXPECT_EQ(totals.h2d_bytes, sched.h2d_bytes);
  EXPECT_EQ(totals.d2h_transfers, sched.d2h_transfers);
  EXPECT_EQ(totals.residency_hits, sched.residency_hits);
  EXPECT_EQ(totals.residency_misses, sched.residency_misses);
  EXPECT_EQ(totals.device_evictions, sched.evictions);
  // The DataTracker sees the same staging traffic.
  const auto dt = world.data_tracker().totals();
  EXPECT_EQ(dt.h2d_transfers, sched.h2d_transfers);
  EXPECT_EQ(dt.h2d_bytes, sched.h2d_bytes);
  EXPECT_EQ(dt.device_hits, sched.residency_hits);
}

TEST(DeviceCounters, ZeroWhenOffEverywhere) {
  support::Rng rng(5);
  auto a = linalg::random_spd(rng, 512, 128);
  rt::WorldConfig cfg;
  cfg.nranks = 4;
  rt::World world(cfg);
  world.enable_tracing();
  apps::cholesky::run(world, a);
  for (int r = 0; r < world.nranks(); ++r) {
    const auto& s = world.scheduler(r).device_stats();
    EXPECT_EQ(s.device_tasks, 0u);
    EXPECT_EQ(s.host_tasks, 0u);
    EXPECT_EQ(s.h2d_transfers, 0u);
    EXPECT_EQ(world.scheduler(r).device_busy(), 0.0);
    EXPECT_EQ(world.scheduler(r).device_resident_bytes(), 0u);
  }
  const auto totals = world.tracer().totals();
  EXPECT_EQ(totals.device_tasks, 0u);
  EXPECT_EQ(totals.h2d_transfers, 0u);
  EXPECT_EQ(totals.residency_hits, 0u);
  EXPECT_EQ(totals.residency_misses, 0u);
}

// ---------------------------------------------------------------------------
// HBM pressure: LRU eviction + dirty writebacks
// ---------------------------------------------------------------------------

TEST(DeviceResidency, SmallHbmForcesEvictionsAndWritebacks) {
  // Each 256-tile is 512 KB; a GEMM dispatch pins three of them. 1.25 MB of
  // HBM can't hold two dispatches' working sets, so residents thrash — and
  // evicted factor tiles were written on device, so writebacks (d2h) must
  // appear.
  rt::WorldConfig cfg = device_world(rt::DevicePlacement::Always);
  cfg.machine.hbm_bytes = 1.25e6;
  const DeviceRun r = potrf_device_run(cfg);
  EXPECT_GT(r.stats.device_tasks, 0u);
  EXPECT_GT(r.stats.evictions, 0u);
  EXPECT_GT(r.stats.d2h_transfers, 0u);
  EXPECT_GT(r.stats.d2h_bytes, 0u);
  // Pressure can only lose reuse relative to the roomy-HBM run.
  const DeviceRun roomy =
      potrf_device_run(device_world(rt::DevicePlacement::Always));
  EXPECT_EQ(roomy.stats.evictions, 0u);
  EXPECT_GT(roomy.stats.residency_hits, 0u);
  EXPECT_LE(r.stats.residency_hits, roomy.stats.residency_hits);
  EXPECT_GT(r.stats.h2d_bytes, roomy.stats.h2d_bytes);
  // Numerics are immune to eviction thrash.
  EXPECT_EQ(r.checksum, roomy.checksum);
}

// ---------------------------------------------------------------------------
// DataCopy device staging lifecycle
// ---------------------------------------------------------------------------

TEST(DeviceDataCopy, StagingLifecycleBalances) {
  rt::WorldConfig cfg;
  cfg.nranks = 1;
  rt::World w(cfg);
  auto& dt = w.data_tracker();
  {
    rt::DataCopy<int> c(dt, nullptr, w.comm(), 0, 42);
    EXPECT_EQ(c.device(), -1);
    EXPECT_TRUE(c.stage_to_device(0));    // cold: pays the H2D transfer
    EXPECT_FALSE(c.stage_to_device(0));   // resident: free hit
    EXPECT_EQ(c.device(), 0);
    EXPECT_EQ(dt.rank_stats(0).h2d_transfers, 1u);
    EXPECT_EQ(dt.rank_stats(0).device_hits, 1u);
    EXPECT_TRUE(c.stage_to_device(1));    // migrate: clean drop + new staging
    EXPECT_EQ(dt.rank_stats(0).h2d_transfers, 2u);
    EXPECT_EQ(dt.rank_stats(0).d2h_transfers, 0u);
    c.unstage(/*dirty=*/true);            // dirty: pays the writeback
    EXPECT_EQ(dt.rank_stats(0).d2h_transfers, 1u);
    EXPECT_EQ(c.device(), -1);
    c.unstage(true);                      // no-op when host-only
    EXPECT_EQ(dt.rank_stats(0).d2h_transfers, 1u);
  }
  EXPECT_EQ(dt.rank_stats(0).device_live_bytes, 0u);
  {
    rt::DataCopy<int> c(dt, nullptr, w.comm(), 0, 7);
    c.stage_to_device(0);
    EXPECT_EQ(dt.rank_stats(0).device_live_bytes, sizeof(int));
    EXPECT_GT(dt.rank_stats(0).device_watermark, 0u);
  }  // dtor auto-unstages (clean) so the books balance
  EXPECT_EQ(dt.rank_stats(0).device_live_bytes, 0u);
  w.fence();
}

// ---------------------------------------------------------------------------
// fence-time residency reconciliation
// ---------------------------------------------------------------------------

TEST(DeviceResidency, FenceCatchesUnbalancedAccounting) {
  support::Rng rng(5);
  auto a = linalg::random_spd(rng, 512, 128);
  rt::WorldConfig cfg = device_world(rt::DevicePlacement::Greedy);
  rt::World world(cfg);
  apps::cholesky::run(world, a);  // fences internally: books balance
  // Poke a phantom staging into the tracker: the next fence must see the
  // tracker and the schedulers disagree and throw.
  world.data_tracker().on_stage_h2d(0, 123);
  EXPECT_THROW(world.fence(), support::ApiError);
}

TEST(DeviceOff, SubmitDeviceForwardsToHostPath) {
  // submit_device on a device-less scheduler is the host submit, verbatim:
  // runs on a worker, leaves every device counter untouched.
  rt::WorldConfig cfg;
  cfg.machine.cores_per_node = 1;
  cfg.nranks = 1;
  rt::World w(cfg);
  std::vector<int> order;
  rt::DeviceCall dev;
  dev.cost = 1e-9;  // would be absurdly fast on a device, but there is none
  dev.datums = {{/*tag=*/1, /*bytes=*/64, /*write=*/false}};
  w.scheduler(0).submit(1, 1.0, [&] { order.push_back(1); });
  w.scheduler(0).submit_device(rt::kDefaultJob, 2, 1.0, dev,
                               [&] { order.push_back(2); });
  w.scheduler(0).submit(3, 1.0, [&] { order.push_back(3); });
  w.fence();
  // Priority order preserved: the device-eligible task is an ordinary task.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(w.scheduler(0).device_stats().device_tasks, 0u);
  EXPECT_EQ(w.scheduler(0).device_stats().host_tasks, 0u);
  EXPECT_EQ(w.scheduler(0).device_resident_bytes(), 0u);
}

}  // namespace
