// Unit tests for tiles, dense kernels, distributions, and generators.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/fw_kernels.hpp"
#include "linalg/dist.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix_gen.hpp"

namespace {

using namespace ttg;
using namespace ttg::linalg;

TEST(Tile, ConstructionAndAccess) {
  Tile t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_FALSE(t.is_ghost());
  t(2, 3) = 5.0;
  EXPECT_DOUBLE_EQ(t(2, 3), 5.0);
  EXPECT_DOUBLE_EQ(t(0, 0), 0.0);
  EXPECT_EQ(t.wire_bytes(), 3u * 4u * sizeof(double));
}

TEST(Tile, GhostMode) {
  auto g = Tile::ghost(100, 200, 42);
  EXPECT_TRUE(g.is_ghost());
  EXPECT_EQ(g.signature(), 42u);
  EXPECT_EQ(g.wire_bytes(), 100u * 200u * sizeof(double));
  EXPECT_TRUE(g.data().empty());
  EXPECT_DEATH((void)g(0, 0), "ghost");
}

TEST(Tile, NormAndDiff) {
  Tile a(2, 2), b(2, 2);
  a(0, 0) = 3;
  a(1, 1) = 4;
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  b(0, 0) = 3.5;
  b(1, 1) = 4;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.5);
}

TEST(Kernels, PotrfMatchesDefinition) {
  support::Rng rng(1);
  Tile a = random_spd_dense(rng, 24);
  Tile l = a;
  ASSERT_TRUE(potrf(l));
  // Check A == L L^T.
  for (int i = 0; i < 24; ++i)
    for (int j = 0; j < 24; ++j) {
      double s = 0;
      for (int k = 0; k < 24; ++k) s += l(i, k) * l(j, k);
      EXPECT_NEAR(s, a(i, j), 1e-9);
    }
  // Strict upper triangle zeroed.
  for (int i = 0; i < 24; ++i)
    for (int j = i + 1; j < 24; ++j) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
}

TEST(Kernels, PotrfRejectsIndefinite) {
  Tile a(2, 2);
  a(0, 0) = 1;
  a(1, 1) = -1;
  EXPECT_FALSE(potrf(a));
}

TEST(Kernels, TrsmSolvesAgainstTriangle) {
  support::Rng rng(2);
  Tile l = random_spd_dense(rng, 8);
  ASSERT_TRUE(potrf(l));
  Tile a = random_tile(rng, 5, 8);
  Tile x = a;
  trsm(l, x);
  // Verify X L^T == A.
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 8; ++j) {
      double s = 0;
      for (int k = 0; k < 8; ++k) s += x(i, k) * l(j, k);
      EXPECT_NEAR(s, a(i, j), 1e-9);
    }
}

TEST(Kernels, SyrkSubtractsOuterProduct) {
  support::Rng rng(3);
  Tile a = random_tile(rng, 6, 4);
  Tile c(6, 6);
  Tile c0 = c;
  syrk(a, c);
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 6; ++j) {
      double s = 0;
      for (int k = 0; k < 4; ++k) s += a(i, k) * a(j, k);
      EXPECT_NEAR(c(i, j), c0(i, j) - s, 1e-12);
    }
}

TEST(Kernels, GemmNtSubtracts) {
  support::Rng rng(4);
  Tile a = random_tile(rng, 3, 5), b = random_tile(rng, 4, 5);
  Tile c = random_tile(rng, 3, 4);
  Tile c0 = c;
  gemm_nt(c, a, b);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 4; ++j) {
      double s = 0;
      for (int k = 0; k < 5; ++k) s += a(i, k) * b(j, k);
      EXPECT_NEAR(c(i, j), c0(i, j) - s, 1e-12);
    }
}

TEST(Kernels, GemmNnAccumulates) {
  support::Rng rng(5);
  Tile a = random_tile(rng, 3, 5), b = random_tile(rng, 5, 4);
  Tile c = random_tile(rng, 3, 4);
  Tile c0 = c;
  gemm_nn_acc(c, a, b);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 4; ++j) {
      double s = 0;
      for (int k = 0; k < 5; ++k) s += a(i, k) * b(k, j);
      EXPECT_NEAR(c(i, j), c0(i, j) + s, 1e-12);
    }
}

TEST(Kernels, MinplusComputesShortestHop) {
  Tile w(2, 2), a(2, 2), b(2, 2);
  for (auto* t : {&w, &a, &b})
    for (auto& v : t->data()) v = kInf;
  a(0, 0) = 1;
  b(0, 1) = 2;
  w(0, 1) = 10;
  minplus(w, a, b);
  EXPECT_DOUBLE_EQ(w(0, 1), 3.0);  // via: 1 + 2 beats 10
}

TEST(Kernels, TileAdd) {
  Tile a(2, 2), b(2, 2);
  a(0, 0) = 1;
  b(0, 0) = 2;
  tile_add(a, b);
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
}

TEST(Kernels, GhostKernelsCombineSignaturesDeterministically) {
  auto mk = [] {
    auto a = Tile::ghost(4, 4, 1);
    auto c = Tile::ghost(4, 4, 2);
    syrk(a, c);
    return c.signature();
  };
  EXPECT_EQ(mk(), mk());
  // Different inputs produce different signatures.
  auto a = Tile::ghost(4, 4, 3);
  auto c = Tile::ghost(4, 4, 2);
  syrk(a, c);
  EXPECT_NE(c.signature(), mk());
}

TEST(Kernels, FlopCounts) {
  EXPECT_DOUBLE_EQ(flops::gemm(2, 3, 4), 48.0);
  EXPECT_DOUBLE_EQ(flops::trsm(2, 3), 18.0);
  EXPECT_DOUBLE_EQ(flops::syrk(3, 2), 18.0);
  EXPECT_NEAR(flops::potrf(3), 9.0, 1e-12);
  // Time helpers scale inversely with efficiency.
  const auto m = sim::hawk();
  EXPECT_LT(gemm_time(m, 64, 64, 64), potrf_time(m, 64) * flops::gemm(64, 64, 64) /
                                          flops::potrf(64));
}

TEST(FwKernels, MatchDenseReference) {
  support::Rng rng(6);
  const int n = 24, bs = 8;
  auto w0 = random_adjacency(rng, n, bs, 0.3);
  auto ref = dense_fw(w0.to_dense());
  // Run the tiled algorithm serially with the A/B/C/D kernels.
  auto m = w0;
  const int nt = m.ntiles();
  for (int k = 0; k < nt; ++k) {
    graph::fw_a(m.tile(k, k));
    for (int j = 0; j < nt; ++j)
      if (j != k) graph::fw_b(m.tile(k, j), m.tile(k, k));
    for (int i = 0; i < nt; ++i)
      if (i != k) graph::fw_c(m.tile(i, k), m.tile(k, k));
    for (int i = 0; i < nt; ++i)
      for (int j = 0; j < nt; ++j)
        if (i != k && j != k) graph::fw_d(m.tile(i, j), m.tile(i, k), m.tile(k, j));
  }
  EXPECT_LT(m.to_dense().max_abs_diff(ref), 1e-12);
}

TEST(TiledMatrix, RoundtripDense) {
  support::Rng rng(7);
  Tile d = random_tile(rng, 20, 20);
  auto m = TiledMatrix::from_dense(d, 6);  // ragged last tile
  EXPECT_EQ(m.ntiles(), 4);
  EXPECT_EQ(m.tile_rows(3), 2);
  EXPECT_LT(m.to_dense().max_abs_diff(d), 1e-15);
}

TEST(TiledMatrix, GhostMatrixShapes) {
  auto g = ghost_matrix(100, 30);
  EXPECT_EQ(g.ntiles(), 4);
  EXPECT_TRUE(g.tile(0, 0).is_ghost());
  EXPECT_EQ(g.tile(3, 3).rows(), 10);
  EXPECT_NE(g.tile(0, 1).signature(), g.tile(1, 0).signature());
}

TEST(BlockCyclic, CoversAllRanksEvenly) {
  for (int nranks : {1, 2, 4, 6, 8, 16}) {
    auto d = BlockCyclic2D::make(nranks);
    EXPECT_EQ(d.nranks(), nranks);
    std::vector<int> count(static_cast<std::size_t>(nranks), 0);
    for (int i = 0; i < 32; ++i)
      for (int j = 0; j < 32; ++j) {
        const int o = d.owner(i, j);
        ASSERT_GE(o, 0);
        ASSERT_LT(o, nranks);
        count[static_cast<std::size_t>(o)]++;
      }
    for (int c : count) EXPECT_GT(c, 0);
  }
}

TEST(BlockCyclic, NearSquareGrids) {
  EXPECT_EQ(BlockCyclic2D::make(16).P, 4);
  EXPECT_EQ(BlockCyclic2D::make(8).P, 2);
  EXPECT_EQ(BlockCyclic2D::make(7).P, 1);
}

TEST(Generators, SpdIsFactorizable) {
  support::Rng rng(8);
  auto a = random_spd(rng, 40, 16);
  Tile d = a.to_dense();
  EXPECT_TRUE(potrf(d));
}

TEST(Generators, AdjacencyHasZeroDiagonal) {
  support::Rng rng(9);
  auto w = random_adjacency(rng, 16, 8, 0.5);
  Tile d = w.to_dense();
  for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(d(i, i), 0.0);
}

}  // namespace
