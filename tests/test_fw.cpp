// Integration tests of the FW-APSP implementations.
#include <gtest/gtest.h>

#include "apps/fw_apsp/fw_ttg.hpp"
#include "baselines/fw_mpi_omp.hpp"
#include "ttg/ttg.hpp"

namespace {

using namespace ttg;

struct Case {
  int nranks;
  int n;
  int bs;
  rt::BackendKind backend;
};

class FwCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(FwCorrectness, MatchesDenseReference) {
  const auto p = GetParam();
  support::Rng rng(31);
  auto w0 = linalg::random_adjacency(rng, p.n, p.bs, 0.25);
  auto ref = linalg::dense_fw(w0.to_dense());

  rt::WorldConfig cfg;
  cfg.nranks = p.nranks;
  cfg.backend = p.backend;
  rt::World world(cfg);
  auto res = apps::fw::run(world, w0);
  EXPECT_LT(res.matrix.to_dense().max_abs_diff(ref), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FwCorrectness,
    ::testing::Values(Case{1, 32, 8, rt::BackendKind::Parsec},
                      Case{1, 32, 32, rt::BackendKind::Parsec},  // single tile
                      Case{2, 48, 16, rt::BackendKind::Parsec},
                      Case{4, 64, 16, rt::BackendKind::Parsec},
                      Case{6, 60, 12, rt::BackendKind::Parsec},  // ragged tiles
                      Case{4, 64, 16, rt::BackendKind::Madness},
                      Case{2, 48, 24, rt::BackendKind::Madness}));

TEST(Fw, DisconnectedVerticesStayInf) {
  // Graph with an unreachable vertex: distances must remain "infinite".
  linalg::TiledMatrix w0(4, 2);
  auto d = linalg::Tile(4, 4);
  for (auto& v : d.data()) v = linalg::kInf;
  for (int i = 0; i < 4; ++i) d(i, i) = 0;
  d(0, 1) = 1;
  d(1, 2) = 1;  // vertex 3 disconnected
  w0 = linalg::TiledMatrix::from_dense(d, 2);
  rt::WorldConfig cfg;
  cfg.nranks = 2;
  rt::World world(cfg);
  auto res = apps::fw::run(world, w0);
  auto out = res.matrix.to_dense();
  EXPECT_DOUBLE_EQ(out(0, 2), 2.0);
  EXPECT_GE(out(0, 3), linalg::kInf * 0.9);
  EXPECT_GE(out(3, 0), linalg::kInf * 0.9);
}

TEST(Fw, TaskCountIsNtCubed) {
  support::Rng rng(32);
  const int nt = 4;
  auto w0 = linalg::random_adjacency(rng, nt * 8, 8, 0.3);
  rt::WorldConfig cfg;
  cfg.nranks = 2;
  rt::World world(cfg);
  auto res = apps::fw::run(world, w0);
  EXPECT_EQ(res.tasks, static_cast<std::uint64_t>(nt) * nt * nt);
}

TEST(Fw, NegativeEdgesSupported) {
  // FW handles negative weights (no negative cycles).
  linalg::Tile d(4, 4);
  for (auto& v : d.data()) v = linalg::kInf;
  for (int i = 0; i < 4; ++i) d(i, i) = 0;
  d(0, 1) = 5;
  d(1, 2) = -3;
  d(0, 2) = 4;
  auto w0 = linalg::TiledMatrix::from_dense(d, 2);
  auto ref = linalg::dense_fw(d);
  rt::WorldConfig cfg;
  cfg.nranks = 2;
  rt::World world(cfg);
  auto res = apps::fw::run(world, w0);
  EXPECT_LT(res.matrix.to_dense().max_abs_diff(ref), 1e-12);
  EXPECT_DOUBLE_EQ(res.matrix.to_dense()(0, 2), 2.0);
}

TEST(FwMpiOmp, ProcessCountConstraint) {
  // "requiring process numbers that are both square and multiples of 2".
  EXPECT_TRUE(baselines::fw_mpi_omp_supports(1));
  EXPECT_TRUE(baselines::fw_mpi_omp_supports(4));
  EXPECT_TRUE(baselines::fw_mpi_omp_supports(16));
  EXPECT_TRUE(baselines::fw_mpi_omp_supports(64));
  EXPECT_FALSE(baselines::fw_mpi_omp_supports(2));
  EXPECT_FALSE(baselines::fw_mpi_omp_supports(9));  // square but odd
  EXPECT_FALSE(baselines::fw_mpi_omp_supports(8));
  EXPECT_THROW(baselines::run_fw_mpi_omp(sim::hawk(), 8, 1024, 64),
               support::ApiError);
}

TEST(FwMpiOmp, TtgOutperformsForkJoin) {
  // Fig. 8: "the TTG implementation clearly outperforms the MPI+OpenMP
  // implementation up to 16 nodes by a factor of almost 2".
  const int nodes = 4, n = 8192, bs = 128;
  auto ghost = linalg::ghost_matrix(n, bs);
  rt::WorldConfig cfg;
  cfg.nranks = nodes;
  rt::World world(cfg);
  apps::fw::Options opt;
  opt.collect = false;
  const double ttg_t = apps::fw::run(world, ghost, opt).makespan;
  const double omp_t = baselines::run_fw_mpi_omp(sim::hawk(), nodes, n, bs).makespan;
  EXPECT_GT(omp_t, ttg_t * 1.3);
}

TEST(FwMpiOmp, StrongScalingDegradesGracefully) {
  const int n = 8192, bs = 128;
  double prev = 1e30;
  for (int nodes : {1, 4, 16}) {
    const double t = baselines::run_fw_mpi_omp(sim::hawk(), nodes, n, bs).makespan;
    EXPECT_LT(t, prev);  // still scales, just less than TTG
    prev = t;
  }
}

TEST(Fw, GhostAndRealSameVirtualTime) {
  support::Rng rng(33);
  const int n = 64, bs = 16;
  auto real = linalg::random_adjacency(rng, n, bs, 0.3);
  auto ghost = linalg::ghost_matrix(n, bs);
  rt::WorldConfig cfg;
  cfg.nranks = 4;
  double tr, tg;
  {
    rt::World w(cfg);
    tr = apps::fw::run(w, real).makespan;
  }
  {
    rt::World w(cfg);
    apps::fw::Options opt;
    opt.collect = false;
    tg = apps::fw::run(w, ghost, opt).makespan;
  }
  EXPECT_NEAR(tr, tg, 1e-12);
}

}  // namespace
