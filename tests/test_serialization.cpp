// Unit + property tests for the serialization framework: archive
// round-trips, protocol-selection traits, and split-metadata descriptors.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "linalg/tile.hpp"
#include "mra/function_tree.hpp"
#include "serialization/archive.hpp"
#include "serialization/traits.hpp"
#include "support/rng.hpp"
#include "ttg/keys.hpp"

namespace {

using namespace ttg;
using ser::from_bytes;
using ser::to_bytes;

template <typename T>
void expect_roundtrip(const T& v) {
  auto buf = to_bytes(v);
  EXPECT_EQ(from_bytes<T>(buf), v);
}

TEST(Archive, Scalars) {
  expect_roundtrip(42);
  expect_roundtrip(3.14159);
  expect_roundtrip<std::uint64_t>(0xdeadbeefcafeull);
  expect_roundtrip(true);
  expect_roundtrip('x');
}

TEST(Archive, Containers) {
  expect_roundtrip(std::vector<int>{1, 2, 3});
  expect_roundtrip(std::vector<double>{});
  expect_roundtrip(std::string("hello ttg"));
  expect_roundtrip(std::string());
  expect_roundtrip(std::pair<int, std::string>{7, "seven"});
  expect_roundtrip(std::tuple<int, double, std::string>{1, 2.5, "x"});
  expect_roundtrip(std::map<std::string, int>{{"a", 1}, {"b", 2}});
  expect_roundtrip(std::array<int, 4>{9, 8, 7, 6});
  expect_roundtrip(std::vector<std::vector<int>>{{1}, {}, {2, 3}});
}

struct Custom {
  int a = 0;
  std::vector<double> xs;
  bool operator==(const Custom&) const = default;
  template <typename Ar>
  void serialize(Ar& ar) {
    ar& a& xs;
  }
};

struct AdlType {
  int v = 0;
  bool operator==(const AdlType&) const = default;
};
template <typename Ar>
void serialize(Ar& ar, AdlType& t) {
  ar& t.v;
}

TEST(Archive, MemberSerialize) { expect_roundtrip(Custom{5, {1.5, 2.5}}); }
TEST(Archive, AdlSerialize) { expect_roundtrip(AdlType{11}); }

TEST(Archive, UnderrunDetected) {
  auto buf = to_bytes(42);
  buf.pop_back();
  EXPECT_DEATH((void)from_bytes<int>(buf), "underrun");
}

TEST(Archive, PropertyRandomVectors) {
  support::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> v(static_cast<std::size_t>(rng.uniform_int(0, 200)));
    for (auto& x : v) x = rng.uniform(-1e9, 1e9);
    expect_roundtrip(v);
  }
}

TEST(Archive, PropertyRandomStrings) {
  support::Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    std::string s(static_cast<std::size_t>(rng.uniform_int(0, 100)), ' ');
    for (auto& c : s) c = static_cast<char>(rng.uniform_int(0, 255));
    expect_roundtrip(s);
  }
}

TEST(Traits, ProtocolSelectionOrder) {
  // splitmd > trivial > archive, as in Section II-C.
  EXPECT_EQ(ser::protocol_for<linalg::Tile>(), ser::Protocol::SplitMetadata);
  EXPECT_EQ(ser::protocol_for<mra::Coeffs>(), ser::Protocol::SplitMetadata);
  EXPECT_EQ(ser::protocol_for<int>(), ser::Protocol::Trivial);
  EXPECT_EQ(ser::protocol_for<Void>(), ser::Protocol::Trivial);
  EXPECT_EQ(ser::protocol_for<Custom>(), ser::Protocol::Archive);
  EXPECT_EQ(ser::protocol_for<std::vector<double>>(), ser::Protocol::Archive);
}

TEST(Traits, SerializabilityDetection) {
  EXPECT_TRUE(ser::is_serializable_v<int>);
  EXPECT_TRUE(ser::is_serializable_v<Custom>);
  EXPECT_TRUE(ser::is_serializable_v<linalg::Tile>);
  EXPECT_TRUE((ser::is_trivially_serializable_v<Int3>));
  EXPECT_FALSE(ser::is_trivially_serializable_v<Custom>);
}

TEST(Traits, WireSizeUsesDeclaredBytes) {
  auto ghost = linalg::Tile::ghost(100, 100);
  const auto buf = to_bytes(ghost);
  // Ghost serializes small but declares its full footprint on the wire.
  EXPECT_LT(buf.size(), 1000u);
  EXPECT_EQ(ser::wire_size(ghost, buf.size()), 100u * 100u * sizeof(double));
  // Types without wire_bytes() use the serialized size.
  EXPECT_EQ(ser::wire_size(Custom{}, 24), 24u);
}

TEST(SplitMetadata, TileRoundtrip) {
  using SMD = ser::SplitMetadata<linalg::Tile>;
  support::Rng rng(7);
  linalg::Tile t(8, 5);
  for (auto& v : t.data()) v = rng.uniform(-1, 1);

  auto md = SMD::get_metadata(t);
  auto copy = SMD::create(md);
  ASSERT_EQ(copy.rows(), 8);
  ASSERT_EQ(copy.cols(), 5);
  const auto src = SMD::payload(t);
  const auto dst = SMD::payload(copy);
  ASSERT_EQ(src.size(), dst.size());
  std::memcpy(dst.data(), src.data(), src.size());
  EXPECT_EQ(copy, t);
  EXPECT_EQ(SMD::payload_bytes(t), 8u * 5u * sizeof(double));
}

TEST(SplitMetadata, GhostTilePayloadDeclaredNotActual) {
  using SMD = ser::SplitMetadata<linalg::Tile>;
  auto g = linalg::Tile::ghost(64, 64, 123);
  EXPECT_EQ(SMD::payload_bytes(g), 64u * 64u * sizeof(double));
  EXPECT_TRUE(SMD::payload(g).empty());  // nothing to actually copy
  auto re = SMD::create(SMD::get_metadata(g));
  EXPECT_TRUE(re.is_ghost());
  EXPECT_EQ(re.signature(), 123u);
}

TEST(SplitMetadata, CoeffsRoundtrip) {
  using SMD = ser::SplitMetadata<mra::Coeffs>;
  mra::Coeffs c;
  c.v = {1.0, 2.0, 3.0};
  auto copy = SMD::create(SMD::get_metadata(c));
  ASSERT_EQ(copy.v.size(), 3u);
  std::memcpy(SMD::payload(copy).data(), SMD::payload(c).data(),
              SMD::payload(c).size());
  EXPECT_EQ(copy.v, c.v);
}

TEST(Archive, TileWholeObjectRoundtrip) {
  support::Rng rng(8);
  linalg::Tile t(6, 7);
  for (auto& v : t.data()) v = rng.uniform(-1, 1);
  expect_roundtrip(t);
  expect_roundtrip(linalg::Tile::ghost(10, 20, 99));
  expect_roundtrip(linalg::Tile());
}

}  // namespace
