// Tests of tree-routed streaming reductions: the topology-aware tree
// layout (build_tree / layout_members), the adaptive arity hook, the
// count-then-collect reduction protocol (counts with set_argstream_size,
// gate-triggered finalize, owner in-degree, partial conservation),
// degeneracy to the flat path, determinism of non-commutative reducers,
// fault recovery of dropped partials on both backends, and bit-identical
// application numerics (bspmm C tiles, POTRF) across routing modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "apps/bspmm/bspmm_ttg.hpp"
#include "apps/cholesky/cholesky_ttg.hpp"
#include "linalg/kernels.hpp"
#include "linalg/tile.hpp"
#include "net/network.hpp"
#include "runtime/collective.hpp"
#include "sparse/yukawa_gen.hpp"
#include "ttg/ttg.hpp"

namespace {

using namespace ttg;
namespace coll = rt::collective;

WorldConfig cfg(int nranks, BackendKind b = BackendKind::Parsec) {
  WorldConfig c;
  c.machine = sim::hawk();
  c.machine.cores_per_node = 2;
  c.nranks = nranks;
  c.backend = b;
  return c;
}

// ---- topology + explicit tree shape: pure functions ----

TEST(Topology, NodeMappingFollowsBlockPlacement) {
  coll::Topology one{1};
  EXPECT_EQ(one.node_of(5), 5);
  EXPECT_FALSE(one.same_node(0, 1));  // every rank its own node
  coll::Topology quad{4};
  EXPECT_EQ(quad.node_of(0), 0);
  EXPECT_EQ(quad.node_of(3), 0);
  EXPECT_EQ(quad.node_of(4), 1);
  EXPECT_TRUE(quad.same_node(4, 7));
  EXPECT_FALSE(quad.same_node(3, 4));
}

TEST(TreeLayout, TrivialTopologyMatchesTheHeapShape) {
  // With every rank on its own node, build_tree must reproduce the pure
  // heap used by the broadcast plane: children(p) == tree_children(p).
  std::vector<int> members;
  for (int r = 1; r <= 15; ++r) members.push_back(r);
  for (const int arity : {2, 4}) {
    const auto shape = coll::build_tree(0, members, arity, coll::Topology{1});
    ASSERT_EQ(shape.nmembers(), 15);
    for (int p = 0; p <= 15; ++p) {
      EXPECT_EQ(shape.ranks[static_cast<std::size_t>(p)], p);  // layout order = rank order
      EXPECT_EQ(shape.children[static_cast<std::size_t>(p)],
                coll::tree_children(p, 15, arity))
          << "pos=" << p << " arity=" << arity;
      for (int c : shape.children[static_cast<std::size_t>(p)])
        EXPECT_EQ(shape.parent[static_cast<std::size_t>(c)], p);
    }
    EXPECT_EQ(shape.parent[0], -1);
  }
}

TEST(TreeLayout, ChildSubtreesPartitionTheMembers) {
  std::vector<int> members;
  for (int r = 1; r <= 22; ++r) members.push_back(r);
  for (const int rpn : {1, 4}) {
    const auto shape = coll::build_tree(0, members, 2, coll::Topology{rpn});
    std::vector<int> seen;
    for (int c : shape.children[0]) {
      const auto sub = coll::shape_subtree(shape, c);
      seen.insert(seen.end(), sub.begin(), sub.end());
    }
    std::sort(seen.begin(), seen.end());
    std::vector<int> all;
    for (int p = 1; p <= 22; ++p) all.push_back(p);
    EXPECT_EQ(seen, all) << "rpn=" << rpn;
  }
}

TEST(TreeLayout, EachNodeGroupHasExactlyOneUplink) {
  // 16 ranks, 4 per node, rooted at rank 0: the layout packs each node's
  // ranks into one subtree, so exactly one tree edge enters each of the 3
  // non-root node groups — every other edge is intra-node.
  std::vector<int> members;
  for (int r = 1; r <= 15; ++r) members.push_back(r);
  const coll::Topology topo{4};
  const auto shape = coll::build_tree(0, members, 4, topo);
  int inter = 0;
  std::set<int> entered;
  for (int p = 1; p <= shape.nmembers(); ++p) {
    const int self = shape.ranks[static_cast<std::size_t>(p)];
    const int par = shape.ranks[static_cast<std::size_t>(
        shape.parent[static_cast<std::size_t>(p)])];
    if (!topo.same_node(self, par)) {
      ++inter;
      EXPECT_TRUE(entered.insert(topo.node_of(self)).second)
          << "node " << topo.node_of(self) << " entered twice";
    }
  }
  EXPECT_EQ(inter, 3);
  // Every rank of a node sits inside the subtree entered by its uplink:
  // once a route leaves a node it never returns.
  for (int p = 1; p <= shape.nmembers(); ++p) {
    const int node = topo.node_of(shape.ranks[static_cast<std::size_t>(p)]);
    const auto sub = coll::shape_subtree(shape, p);
    const int par_node = topo.node_of(shape.ranks[static_cast<std::size_t>(
        shape.parent[static_cast<std::size_t>(p)])]);
    if (par_node == node) continue;
    for (int q = 1; q <= shape.nmembers(); ++q)
      if (topo.node_of(shape.ranks[static_cast<std::size_t>(q)]) == node)
        EXPECT_TRUE(std::find(sub.begin(), sub.end(), q) != sub.end())
            << "rank " << shape.ranks[static_cast<std::size_t>(q)]
            << " outside its node's subtree";
  }
}

TEST(PickArity, AdaptiveHookScalesWithFanAndPayload) {
  rt::CollectivePolicy p;
  p.tree_arity = 4;
  p.reduce_arity = 4;
  // Off (both backends' default): the static arity, untouched.
  EXPECT_EQ(coll::pick_arity(p, /*reduce=*/true, 1000, 1 << 20), 4);
  p.adaptive = true;
  // Bandwidth-bound payloads deepen to binary for hop pipelining.
  EXPECT_EQ(coll::pick_arity(p, true, 63, 256 * 1024), 2);
  EXPECT_EQ(coll::pick_arity(p, false, 63, 1 << 20), 2);
  // Tiny coalescable payloads with a wide fan flatten (double the arity).
  EXPECT_EQ(coll::pick_arity(p, true, 63, 64), 8);
  // In between: the static arity.
  EXPECT_EQ(coll::pick_arity(p, true, 63, 64 * 1024), 4);
  EXPECT_EQ(coll::pick_arity(p, true, 8, 64), 4);  // fan below 8x base
  // A flat policy never grows a tree, adaptive or not.
  p.reduce_arity = 0;
  EXPECT_EQ(coll::pick_arity(p, true, 1000, 64), 0);
}

// ---- policy defaults and overrides ----

TEST(ReducePolicy, BackendDefaultsAndWorldConfigOverride) {
  World wp(cfg(2, BackendKind::Parsec));
  EXPECT_EQ(wp.comm().collective().reduce_arity, 4);
  EXPECT_FALSE(wp.comm().collective().adaptive);
  World wm(cfg(2, BackendKind::Madness));
  EXPECT_EQ(wm.comm().collective().reduce_arity, 0);  // MADNESS reduces flat

  auto c = cfg(2, BackendKind::Madness);
  c.reduce_tree_arity = 2;
  c.collective_adaptive = 1;
  World w(c);
  EXPECT_EQ(w.comm().collective().reduce_arity, 2);
  EXPECT_TRUE(w.comm().collective().adaptive);

  auto cp = cfg(2, BackendKind::Parsec);
  cp.reduce_tree_arity = 0;  // force flat reductions on PaRSEC
  World w2(cp);
  EXPECT_EQ(w2.comm().collective().reduce_arity, 0);
}

// ---- the count-then-collect protocol, end to end ----

struct ReduceResult {
  rt::CommStats cs;
  double makespan = 0.0;
  double owner_recv_busy = 0.0;
  std::uint64_t owner_reducer_calls = 0;
  std::uint64_t live_handles = 0;
  long long sum = 0;  ///< reduced value delivered to the sink
  int fires = 0;      ///< sink invocations (must be 1 per key)
};

/// Every rank streams `per_rank` integers into one key owned by rank 0;
/// completion is declared via a static reducer size.
ReduceResult reduce_run(WorldConfig c, int per_rank = 1) {
  World w(c);
  rt::World* wp = &w;
  const int nranks = c.nranks;
  ReduceResult r;
  Edge<Int1, Void> start("start");
  Edge<Int1, long long> stream("stream"), out_e("out");
  auto prod = make_tt(w,
                      [per_rank](const Int1& k, Void&,
                                 std::tuple<Out<Int1, long long>>& out) {
                        for (int i = 0; i < per_rank; ++i)
                          ttg::send<0>(Int1{0}, static_cast<long long>(k.i + 1), out);
                      },
                      edges(start), edges(stream), "produce");
  prod->set_keymap([nranks](const Int1& k) { return k.i % nranks; });
  auto red = make_tt(w,
                     [](const Int1& k, long long& sum,
                        std::tuple<Out<Int1, long long>>& out) {
                       ttg::send<0>(k, sum, out);
                     },
                     edges(stream), edges(out_e), "reduce");
  red->set_input_reducer<0>(
      [wp, &r](long long& acc, long long&& v) {
        if (wp->rank() == 0) r.owner_reducer_calls += 1;
        acc += v;
      },
      nranks * per_rank);
  red->set_keymap([](const Int1&) { return 0; });
  auto sink = make_sink(w, out_e, [&](const Int1&, long long& v) {
    r.sum = v;
    r.fires += 1;
  });
  sink->set_keymap([](const Int1&) { return 0; });
  make_graph_executable(*prod);
  make_graph_executable(*red);
  make_graph_executable(*sink);
  for (int rank = 0; rank < nranks; ++rank) prod->invoke(Int1{rank}, Void{});
  w.fence();
  r.cs = w.comm().stats();
  r.makespan = w.engine().now();
  r.owner_recv_busy = w.network().nic_recv_busy(0);
  r.live_handles = w.data_tracker().live_handles();
  return r;
}

TEST(TreeReduce, CombinesAtInteriorRanksAndFiresOnce) {
  // 13 ranks, one contribution each, arity 4: the owner folds its own
  // value plus <= 4 combined partials; every non-owner rank forwards
  // exactly one partial, each absorbed exactly once (conservation).
  auto c = cfg(13);
  c.reduce_tree_arity = 4;
  const auto r = reduce_run(c);
  EXPECT_EQ(r.fires, 1);
  EXPECT_EQ(r.sum, 13LL * 14 / 2);
  EXPECT_EQ(r.cs.reduce_forwards, 12u);
  EXPECT_EQ(r.cs.reduce_combines, 12u);
  EXPECT_LE(r.owner_reducer_calls, 4u);
  EXPECT_EQ(r.live_handles, 0u);
}

TEST(TreeReduce, OwnerInDegreeDropsToArity) {
  // (The recv-NIC *busy time* unload is payload-bound and asserted by
  // bench/ablation_reduce on 512^2 tiles; 8-byte streams are latency-bound
  // so only the in-degree story is meaningful here.)
  auto flat = cfg(16);
  flat.reduce_tree_arity = 0;
  auto tree = cfg(16);
  tree.reduce_tree_arity = 4;
  const auto rf = reduce_run(flat, /*per_rank=*/2);
  const auto rt_ = reduce_run(tree, /*per_rank=*/2);
  EXPECT_EQ(rf.sum, rt_.sum);
  // Flat: all 30 remote contributions hit the owner's reducer; tree: the
  // owner's second local value plus at most arity combined partials.
  EXPECT_EQ(rf.owner_reducer_calls, 31u);
  EXPECT_LE(rt_.owner_reducer_calls, 5u);
  EXPECT_EQ(rf.cs.reduce_forwards, 0u);
  EXPECT_EQ(rt_.cs.reduce_forwards, 15u);  // one combined partial per rank
}

TEST(TreeReduce, SmallWorldDegeneratesToFlatBitIdentically) {
  // (nranks - 1) == arity: the tree would be a star, so the runtime keeps
  // the flat path and every observable (makespan included) matches.
  auto flat = cfg(5);
  flat.reduce_tree_arity = 0;
  auto tree = cfg(5);
  tree.reduce_tree_arity = 4;
  const auto rf = reduce_run(flat);
  const auto rt_ = reduce_run(tree);
  EXPECT_EQ(rf.sum, rt_.sum);
  EXPECT_EQ(rt_.cs.reduce_forwards, 0u);
  EXPECT_EQ(rt_.cs.reduce_combines, 0u);
  EXPECT_EQ(rf.cs.messages, rt_.cs.messages);
  EXPECT_EQ(rf.makespan, rt_.makespan);  // bit-identical timeline
}

TEST(TreeReduce, MadnessDefaultStaysFlat) {
  const auto r = reduce_run(cfg(13, BackendKind::Madness));
  EXPECT_EQ(r.sum, 13LL * 14 / 2);
  EXPECT_EQ(r.cs.reduce_forwards, 0u);
  EXPECT_EQ(r.owner_reducer_calls, 12u);
}

TEST(TreeReduce, PerKeySizeViaTerminalCompletesTheWave) {
  // The stream size arrives per key through ttg::set_size (routed to the
  // owner), not through a static reducer bound; the owner's count view
  // must still launch the collect wave at exactly the declared total.
  auto c = cfg(9);
  c.reduce_tree_arity = 2;
  World w(c);
  const int nranks = c.nranks;
  Edge<Int1, Void> start("start");
  Edge<Int1, long long> stream("stream"), out_e("out");
  auto prod = make_tt(w,
                      [nranks](const Int1& k, Void&,
                               std::tuple<Out<Int1, long long>>& out) {
                        if (k.i == 0) ttg::set_size<0>(Int1{0}, nranks, out);
                        ttg::send<0>(Int1{0}, static_cast<long long>(k.i + 1), out);
                      },
                      edges(start), edges(stream), "produce");
  prod->set_keymap([nranks](const Int1& k) { return k.i % nranks; });
  auto red = make_tt(w,
                     [](const Int1& k, long long& sum,
                        std::tuple<Out<Int1, long long>>& out) {
                       ttg::send<0>(k, sum, out);
                     },
                     edges(stream), edges(out_e), "reduce");
  red->set_input_reducer<0>([](long long& acc, long long&& v) { acc += v; });
  red->set_keymap([](const Int1&) { return 0; });
  long long sum = 0;
  int fires = 0;
  auto sink = make_sink(w, out_e, [&](const Int1&, long long& v) {
    sum = v;
    ++fires;
  });
  sink->set_keymap([](const Int1&) { return 0; });
  make_graph_executable(*prod);
  make_graph_executable(*red);
  make_graph_executable(*sink);
  for (int r = 0; r < nranks; ++r) prod->invoke(Int1{r}, Void{});
  w.fence();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(sum, 9LL * 10 / 2);
  EXPECT_EQ(w.unfinished(), 0u);
}

TEST(TreeReduce, GateTriggeredFinalizeCollectsEveryContribution) {
  // Unbounded stream closed by ttg::finalize once a side-channel gate has
  // seen every producer: contributions fold at their producing rank before
  // the gate token leaves it, so the close wave's subtree counts are
  // final and the reduced value covers all of them.
  auto c = cfg(11);
  c.reduce_tree_arity = 2;
  World w(c);
  const int nranks = c.nranks;
  Edge<Int1, Void> start("start");
  Edge<Int1, long long> stream("stream"), out_e("out");
  Edge<Int1, Void> gate_e("gate");
  auto prod = make_tt(
      w,
      [](const Int1& k, Void&,
         std::tuple<Out<Int1, long long>, Out<Int1, Void>>& out) {
        ttg::send<0>(Int1{0}, static_cast<long long>(k.i + 1), out);
        ttg::send<1>(Int1{0}, Void{}, out);
      },
      edges(start), edges(stream, gate_e), "produce");
  prod->set_keymap([nranks](const Int1& k) { return k.i % nranks; });
  auto gate = make_tt(w,
                      [](const Int1& k, Void&,
                         std::tuple<Out<Int1, long long>>& out) {
                        ttg::finalize<0>(k, out);
                      },
                      edges(gate_e), edges(stream), "gate");
  gate->set_input_reducer<0>([](Void&, Void&&) {}, nranks);
  gate->set_keymap([](const Int1&) { return 0; });
  auto red = make_tt(w,
                     [](const Int1& k, long long& sum,
                        std::tuple<Out<Int1, long long>>& out) {
                       ttg::send<0>(k, sum, out);
                     },
                     edges(stream), edges(out_e), "reduce");
  red->set_input_reducer<0>([](long long& acc, long long&& v) { acc += v; });
  red->set_keymap([](const Int1&) { return 0; });
  long long sum = 0;
  int fires = 0;
  auto sink = make_sink(w, out_e, [&](const Int1&, long long& v) {
    sum = v;
    ++fires;
  });
  sink->set_keymap([](const Int1&) { return 0; });
  make_graph_executable(*prod);
  make_graph_executable(*gate);
  make_graph_executable(*red);
  make_graph_executable(*sink);
  for (int r = 0; r < nranks; ++r) prod->invoke(Int1{r}, Void{});
  w.fence();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(sum, 11LL * 12 / 2);
  EXPECT_GT(w.comm().stats().reduce_forwards, 0u);
  EXPECT_EQ(w.unfinished(), 0u);
}

TEST(TreeReduce, MultiKeyMultiOwnerShapesAreIndependent) {
  // Three keys owned by three different ranks, contributions from every
  // rank to each: one tree per owner, all reductions correct.
  auto c = cfg(10);
  c.reduce_tree_arity = 2;
  World w(c);
  const int nranks = c.nranks;
  const int nkeys = 3;
  Edge<Int1, Void> start("start");
  Edge<Int1, long long> stream("stream"), out_e("out");
  auto prod = make_tt(w,
                      [nkeys](const Int1& k, Void&,
                              std::tuple<Out<Int1, long long>>& out) {
                        for (int key = 0; key < nkeys; ++key)
                          ttg::send<0>(Int1{key},
                                       static_cast<long long>((key + 1) * (k.i + 1)),
                                       out);
                      },
                      edges(start), edges(stream), "produce");
  prod->set_keymap([nranks](const Int1& k) { return k.i % nranks; });
  auto red = make_tt(w,
                     [](const Int1& k, long long& sum,
                        std::tuple<Out<Int1, long long>>& out) {
                       ttg::send<0>(k, sum, out);
                     },
                     edges(stream), edges(out_e), "reduce");
  red->set_input_reducer<0>([](long long& acc, long long&& v) { acc += v; }, nranks);
  red->set_keymap([nranks](const Int1& k) { return (k.i * 3 + 1) % nranks; });
  std::vector<long long> sums(nkeys, 0);
  auto sink = make_sink(w, out_e, [&](const Int1& k, long long& v) {
    sums[static_cast<std::size_t>(k.i)] = v;
  });
  sink->set_keymap([nranks](const Int1& k) { return (k.i * 3 + 1) % nranks; });
  make_graph_executable(*prod);
  make_graph_executable(*red);
  make_graph_executable(*sink);
  for (int r = 0; r < nranks; ++r) prod->invoke(Int1{r}, Void{});
  w.fence();
  const long long base = 10LL * 11 / 2;
  for (int key = 0; key < nkeys; ++key) EXPECT_EQ(sums[key], (key + 1) * base);
  const auto& cs = w.comm().stats();
  EXPECT_EQ(cs.reduce_forwards, cs.reduce_combines);
  EXPECT_EQ(cs.reduce_forwards, 3u * 9u);  // one partial per non-owner per key
}

TEST(TreeReduce, NonCommutativeReducerIsRunToRunDeterministic) {
  // Order-sensitive fold (concatenation): the tree fixes its fold order
  // (local value first, then child subtrees in slot order), so two
  // identical runs agree element for element, and the multiset of
  // contributions is exactly preserved.
  auto run = [] {
    auto c = cfg(9);
    c.reduce_tree_arity = 2;
    World w(c);
    const int nranks = c.nranks;
    Edge<Int1, Void> start("start");
    Edge<Int1, std::vector<double>> stream("stream"), out_e("out");
    auto prod = make_tt(w,
                        [](const Int1& k, Void&,
                           std::tuple<Out<Int1, std::vector<double>>>& out) {
                          ttg::send<0>(Int1{0},
                                       std::vector<double>{static_cast<double>(k.i)},
                                       out);
                        },
                        edges(start), edges(stream), "produce");
    prod->set_keymap([nranks](const Int1& k) { return k.i % nranks; });
    auto red = make_tt(w,
                       [](const Int1& k, std::vector<double>& acc,
                          std::tuple<Out<Int1, std::vector<double>>>& out) {
                         ttg::send<0>(k, acc, out);
                       },
                       edges(stream), edges(out_e), "reduce");
    red->set_input_reducer<0>(
        [](std::vector<double>& acc, std::vector<double>&& v) {
          acc.insert(acc.end(), v.begin(), v.end());
        },
        nranks);
    red->set_keymap([](const Int1&) { return 0; });
    std::vector<double> got;
    auto sink = make_sink(w, out_e,
                          [&](const Int1&, std::vector<double>& v) { got = v; });
    sink->set_keymap([](const Int1&) { return 0; });
    make_graph_executable(*prod);
    make_graph_executable(*red);
    make_graph_executable(*sink);
    for (int r = 0; r < nranks; ++r) prod->invoke(Int1{r}, Void{});
    w.fence();
    return got;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), 9u);
  EXPECT_EQ(a, b);  // element-for-element, run to run
  auto sorted = a;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 9; ++i) EXPECT_DOUBLE_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(TreeReduce, TopologyLayoutKeepsPartialsOnNode) {
  // 16 ranks: with 4 ranks per node the packed layout crosses the network
  // once per non-root node (3 inter-node partial hops of 15); with the
  // trivial topology every hop is inter-node.
  auto flat_topo = cfg(16);
  flat_topo.reduce_tree_arity = 4;
  flat_topo.ranks_per_node = 1;
  auto packed = cfg(16);
  packed.reduce_tree_arity = 4;
  packed.ranks_per_node = 4;
  const auto r1 = reduce_run(flat_topo);
  const auto r4 = reduce_run(packed);
  EXPECT_EQ(r1.sum, r4.sum);
  EXPECT_EQ(r1.cs.intra_node_hops, 0u);
  EXPECT_EQ(r1.cs.inter_node_hops, 15u);
  EXPECT_EQ(r4.cs.inter_node_hops, 3u);
  EXPECT_EQ(r4.cs.intra_node_hops, 12u);
}

TEST(TreeReduce, RecoversDroppedPartialsAndStaysReproducible) {
  for (const auto backend : {BackendKind::Parsec, BackendKind::Madness}) {
    auto c = cfg(13, backend);
    c.reduce_tree_arity = 2;  // route through interior ranks on both
    c.faults = sim::FaultPlan::parse("drop=0.2", 11);
    const auto r1 = reduce_run(c);
    EXPECT_EQ(r1.fires, 1) << "backend=" << rt::to_string(backend);
    EXPECT_EQ(r1.sum, 13LL * 14 / 2);
    EXPECT_EQ(r1.cs.dead_letters, 0u);
    EXPECT_GT(r1.cs.retries, 0u);
    EXPECT_EQ(r1.live_handles, 0u);
    // Seeded fault runs replay bit-identically.
    const auto r2 = reduce_run(c);
    EXPECT_EQ(r1.cs.retries, r2.cs.retries);
    EXPECT_EQ(r1.cs.recovered_msgs, r2.cs.recovered_msgs);
    EXPECT_EQ(r1.makespan, r2.makespan);  // to the bit
  }
}

// ---- application numerics: routing must never change payloads ----

TEST(Numerics, BspmmCTilesBitIdenticalAcrossReduceRouting) {
  // bspmm's C accumulation keys every reduction at the rank that computes
  // its contributions, so the tree must degenerate to the owner-local fold
  // and reproduce flat routing bit for bit on both backends.
  sparse::YukawaParams p;
  p.natoms = 24;
  p.max_tile = 32;
  auto a = sparse::yukawa_matrix(p);
  for (const auto backend : {BackendKind::Parsec, BackendKind::Madness}) {
    auto run = [&](int arity) {
      auto c = cfg(4, backend);
      c.reduce_tree_arity = arity;
      World w(c);
      apps::bspmm::Options opt;
      auto res = apps::bspmm::run(w, a, a, opt);
      EXPECT_EQ(w.data_tracker().live_handles(), 0u);
      return res;
    };
    const auto flat = run(0);
    const auto tree = run(4);
    EXPECT_EQ(flat.c.to_dense().data(), tree.c.to_dense().data())
        << "backend=" << rt::to_string(backend);
    EXPECT_EQ(flat.makespan, tree.makespan);
    EXPECT_GT(flat.c.nnz_tiles(), 0u);
  }
}

TEST(Numerics, PotrfUnaffectedByReduceRouting) {
  // POTRF has no streaming terminals: the reduction plane must not touch
  // a single event.
  support::Rng rng(42);
  auto a = linalg::random_spd(rng, 256, 32);
  auto run = [&](int arity) {
    auto c = cfg(8, BackendKind::Parsec);
    c.reduce_tree_arity = arity;
    World w(c);
    auto res = apps::cholesky::run(w, a);
    EXPECT_EQ(w.comm().stats().reduce_forwards, 0u);
    return res;
  };
  const auto flat = run(0);
  const auto tree = run(4);
  EXPECT_EQ(flat.matrix.to_dense().data(), tree.matrix.to_dense().data());
  EXPECT_EQ(flat.makespan, tree.makespan);
}

}  // namespace
