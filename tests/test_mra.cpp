// Tests of the MRA stack: Legendre/quadrature numerics, two-scale
// identities, adaptive projection accuracy, the full TTG pipeline, and the
// native-MADNESS comparator.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/mra/mra_ttg.hpp"
#include "baselines/madness_native_mra.hpp"
#include "mra/legendre.hpp"
#include "ttg/ttg.hpp"

namespace {

using namespace ttg;
using ttg::mra::Gaussian;
using ttg::mra::MraContext;
using ttg::mra::TreeKey;
using ttg::mra::TwoScale;

TEST(Legendre, RecurrenceValues) {
  double p[4];
  ttg::mra::legendre(0.5, 4, p);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
  EXPECT_NEAR(p[2], 0.5 * (3 * 0.25 - 1), 1e-15);
  EXPECT_NEAR(p[3], 0.5 * (5 * 0.125 - 3 * 0.5), 1e-15);
}

TEST(Quadrature, WeightsSumToOne) {
  for (int n : {1, 2, 5, 10, 16}) {
    auto q = ttg::mra::gauss_legendre(n);
    double s = 0;
    for (double w : q.w) s += w;
    EXPECT_NEAR(s, 1.0, 1e-13) << "n=" << n;
  }
}

TEST(Quadrature, ExactForPolynomials) {
  const int n = 6;  // exact through degree 11
  auto q = ttg::mra::gauss_legendre(n);
  for (int deg = 0; deg <= 11; ++deg) {
    double s = 0;
    for (std::size_t i = 0; i < q.x.size(); ++i) s += q.w[i] * std::pow(q.x[i], deg);
    EXPECT_NEAR(s, 1.0 / (deg + 1), 1e-12) << "deg=" << deg;
  }
}

TEST(ScalingFunctions, Orthonormal) {
  const int k = 8;
  auto q = ttg::mra::gauss_legendre(2 * k);
  std::vector<double> phi(static_cast<std::size_t>(k));
  std::vector<double> gram(static_cast<std::size_t>(k) * k, 0.0);
  for (std::size_t p = 0; p < q.x.size(); ++p) {
    ttg::mra::scaling_functions(q.x[p], k, phi.data());
    for (int i = 0; i < k; ++i)
      for (int j = 0; j < k; ++j)
        gram[static_cast<std::size_t>(i) * k + j] +=
            q.w[p] * phi[static_cast<std::size_t>(i)] * phi[static_cast<std::size_t>(j)];
  }
  for (int i = 0; i < k; ++i)
    for (int j = 0; j < k; ++j)
      EXPECT_NEAR(gram[static_cast<std::size_t>(i) * k + j], i == j ? 1.0 : 0.0, 1e-12);
}

TEST(TwoScale, FilterUnfilterIdentityOnParentSpace) {
  // unfilter(filter(x)) == x when x already lies in the parent space:
  // equivalently filter(unfilter(p)) == p for any parent block.
  const int k = 5;
  TwoScale ts(k);
  support::Rng rng(17);
  std::vector<double> p(static_cast<std::size_t>(ts.coeffs_per_node()));
  for (auto& v : p) v = rng.uniform(-1, 1);
  std::array<std::vector<double>, 8> children;
  for (int c = 0; c < 8; ++c) children[static_cast<std::size_t>(c)] =
      ts.unfilter_child(p, c);
  auto back = ts.filter(children);
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_NEAR(back[i], p[i], 1e-12);
}

TEST(TwoScale, NormPreservation) {
  // ||children||^2 == ||parent||^2 + ||residual||^2 (orthogonal projection).
  const int k = 4;
  TwoScale ts(k);
  support::Rng rng(18);
  std::array<std::vector<double>, 8> children;
  double child_n2 = 0;
  for (auto& c : children) {
    c.resize(static_cast<std::size_t>(ts.coeffs_per_node()));
    for (auto& v : c) v = rng.uniform(-1, 1);
    for (double v : c) child_n2 += v * v;
  }
  auto parent = ts.filter(children);
  double parent_n2 = 0;
  for (double v : parent) parent_n2 += v * v;
  double resid_n2 = 0;
  for (int c = 0; c < 8; ++c) {
    auto proj = ts.unfilter_child(parent, c);
    for (std::size_t i = 0; i < proj.size(); ++i) {
      const double d = children[static_cast<std::size_t>(c)][i] - proj[i];
      resid_n2 += d * d;
    }
  }
  EXPECT_NEAR(child_n2, parent_n2 + resid_n2, 1e-10 * child_n2);
}

TEST(Projection, PolynomialProjectsExactlyAtAnyLevel) {
  // A function inside the scaling space projects with zero residual, so
  // adaptive refinement stops immediately: parent-from-children equals
  // direct projection.
  const int k = 6;
  MraContext ctx(k, {Gaussian{1e-12, 1.0, {0.5, 0.5, 0.5}}});  // ~ constant 1
  const TreeKey root{0, 0, 0, 0, 0};
  auto direct = ctx.project_box(root);
  auto children = ctx.project_children(root);
  auto from_children = ctx.twoscale().filter(children);
  for (std::size_t i = 0; i < direct.v.size(); ++i)
    EXPECT_NEAR(direct.v[i], from_children[i], 1e-11);
  // The constant's norm over the unit cube is 1 -> s_000 = 1.
  EXPECT_NEAR(direct.norm2(), 1.0, 1e-10);
}

TEST(Projection, GaussianNormConverges) {
  const int k = 8;
  Gaussian g{1.0e4, 1.0, {0.47, 0.53, 0.51}};
  MraContext ctx(k, {g});
  // Refine adaptively (serial reference walk) and accumulate leaf norms.
  double norm2 = 0;
  const double tol = 1e-7;
  std::vector<TreeKey> stack{{0, 0, 0, 0, 0}};
  while (!stack.empty()) {
    TreeKey key = stack.back();
    stack.pop_back();
    auto child_s = ctx.project_children(key);
    auto parent = ctx.twoscale().filter(child_s);
    double d2 = 0;
    for (int c = 0; c < 8; ++c) {
      auto proj = ctx.twoscale().unfilter_child(parent, c);
      for (std::size_t i = 0; i < proj.size(); ++i) {
        const double d = child_s[static_cast<std::size_t>(c)][i] - proj[i];
        d2 += d * d;
      }
    }
    if ((std::sqrt(d2) > tol || ctx.must_refine(key)) && key.level < 12) {
      for (int c = 0; c < 8; ++c) stack.push_back(key.child(c));
    } else {
      double n2 = 0;
      for (double v : parent) n2 += v * v;
      norm2 += n2;
    }
  }
  EXPECT_NEAR(norm2, g.norm2(), 1e-5 * g.norm2());
}

TEST(TreeKey, ChildParentRoundtrip) {
  const TreeKey key{3, 4, 5, 6, 7};
  for (int c = 0; c < 8; ++c) {
    auto ch = key.child(c);
    EXPECT_EQ(ch.level, 5);
    EXPECT_EQ(ch.parent(), key);
    EXPECT_EQ(ch.child_index(), c);
  }
  EXPECT_EQ(key.ancestor_at(2).level, 2);
  EXPECT_EQ(key.ancestor_at(10), key);
}

TEST(MustRefine, ForcesResolutionOfNarrowFeatures) {
  MraContext ctx(6, {Gaussian{3.0e4, 1.0, {0.3, 0.3, 0.3}}});
  // Coarse box containing the center must refine even though quadrature
  // sees (almost) nothing.
  EXPECT_TRUE(ctx.must_refine(TreeKey{0, 0, 0, 0, 0}));
  // A far-away box must not.
  EXPECT_FALSE(ctx.must_refine(TreeKey{0, 3, 7, 7, 7}));
  // Once boxes are comparable to the width, forcing stops.
  EXPECT_FALSE(ctx.must_refine(TreeKey{0, 12, 1229, 1229, 1229}));
}

struct Case {
  int nranks;
  rt::BackendKind backend;
  int k;
  int nfuncs;
};

class MraPipeline : public ::testing::TestWithParam<Case> {};

TEST_P(MraPipeline, NormsMatchAnalyticAndEachOther) {
  const auto p = GetParam();
  auto fns = ttg::mra::random_gaussians(p.nfuncs, 3.0e4, 2022);
  MraContext ctx(p.k, fns);
  rt::WorldConfig cfg;
  cfg.nranks = p.nranks;
  cfg.backend = p.backend;
  rt::World world(cfg);
  apps::mra::Options opt;
  opt.tol = 1e-6;
  auto res = apps::mra::run(world, ctx, opt);
  ASSERT_EQ(res.norm2_compressed.size(), static_cast<std::size_t>(p.nfuncs));
  for (int f = 0; f < p.nfuncs; ++f) {
    const double analytic = fns[static_cast<std::size_t>(f)].norm2();
    const double nc = res.norm2_compressed.at(f);
    const double nr = res.norm2_reconstructed.at(f);
    EXPECT_NEAR(nc, analytic, 1e-4 * analytic) << "fid=" << f;
    // Reconstruction is exact up to roundoff.
    EXPECT_NEAR(nr, nc, 1e-10 * nc) << "fid=" << f;
  }
  EXPECT_GT(res.tasks, 0u);
  EXPECT_GT(res.makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MraPipeline,
                         ::testing::Values(Case{1, rt::BackendKind::Parsec, 6, 2},
                                           Case{4, rt::BackendKind::Parsec, 6, 3},
                                           Case{4, rt::BackendKind::Madness, 6, 3},
                                           Case{3, rt::BackendKind::Parsec, 5, 2}));

TEST(NativeMra, MatchesTtgNumerics) {
  auto fns = ttg::mra::random_gaussians(3, 3.0e4, 77);
  MraContext ctx(6, fns);
  apps::mra::Options topt;
  topt.tol = 1e-6;
  baselines::NativeMraOptions nopt;
  nopt.tol = 1e-6;

  rt::WorldConfig cfg;
  cfg.nranks = 4;
  cfg.backend = rt::BackendKind::Madness;
  std::map<int, double> ttg_norms, native_norms;
  {
    rt::World w(cfg);
    ttg_norms = apps::mra::run(w, ctx, topt).norm2_compressed;
  }
  {
    rt::World w(cfg);
    native_norms = baselines::run_native_mra(w, ctx, nopt).norm2_compressed;
  }
  for (const auto& [fid, n2] : ttg_norms)
    EXPECT_NEAR(native_norms.at(fid), n2, 1e-9 * n2);
}

TEST(NativeMra, BarriersMakeItSlower) {
  // Fig. 13's ordering: the barrier-per-step native implementation trails
  // the streaming TTG pipeline on the same backend.
  auto fns = ttg::mra::random_gaussians(6, 3.0e4, 123);
  MraContext ctx(6, fns);
  rt::WorldConfig cfg;
  cfg.nranks = 8;
  cfg.backend = rt::BackendKind::Madness;
  double ttg_t, native_t;
  {
    rt::World w(cfg);
    apps::mra::Options opt;
    opt.tol = 1e-6;
    ttg_t = apps::mra::run(w, ctx, opt).makespan;
  }
  {
    rt::World w(cfg);
    baselines::NativeMraOptions opt;
    opt.tol = 1e-6;
    native_t = baselines::run_native_mra(w, ctx, opt).makespan;
  }
  EXPECT_GT(native_t, ttg_t);
}

}  // namespace
