// Sharded-engine unit tests: lane mapping, epoch windows, deterministic
// serial-order tie-breaking, shared-lane transactions, cancellables, and the
// threaded lane drain. Everything here runs at the sim::Engine level with
// synthetic events; runtime-level serial-vs-sharded equivalence lives in
// test_scale_equiv.cpp. The threaded cases are the TSan CI leg's target.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"

namespace {

using ttg::sim::Engine;
using ttg::sim::EngineConfig;
using ttg::sim::Time;

constexpr double kLat = 1e-3;  // cross-rank latency == lookahead

EngineConfig sharded_cfg(int lanes, int nranks, int threads = 1) {
  EngineConfig cfg;
  cfg.lanes = lanes;
  cfg.nranks = nranks;
  cfg.threads = threads;
  cfg.lookahead = kLat;
  return cfg;
}

struct Rec {
  Time t = 0.0;
  int rank = 0;
  std::uint64_t path = 0;
  bool operator==(const Rec& o) const {
    return t == o.t && rank == o.rank && path == o.path;
  }
};

/// Deterministic event cascade over R synthetic ranks. Every event logs
/// (now, rank, path) into the owning rank's log, then spawns: two same-lane
/// children at sub-window offsets (including a dt = 0 tie, exercising the
/// composite-key tie-break) and one cross-rank send paying >= the lookahead
/// latency. Identical logs across engine configurations == identical
/// execution order.
void cascade(Engine& eng, int nranks, int rank, int depth, std::uint64_t path,
             std::vector<std::vector<Rec>>& logs) {
  logs[static_cast<std::size_t>(rank)].push_back(Rec{eng.now(), rank, path});
  if (depth >= 4) return;
  for (int i = 0; i < 2; ++i) {
    eng.after_on(eng.lane_of(rank), i * 1e-5, [&eng, nranks, rank, depth, path, i,
                                               &logs] {
      cascade(eng, nranks, rank, depth + 1, path * 8 + 1 + static_cast<unsigned>(i),
              logs);
    });
  }
  const int dst = (rank * 5 + depth + 1) % nranks;
  eng.after_on(eng.lane_of(dst), kLat + 1e-6 * (rank + 1),
               [&eng, nranks, dst, depth, path, &logs] {
                 cascade(eng, nranks, dst, depth + 1, path * 8 + 7, logs);
               });
}

std::vector<std::vector<Rec>> run_cascade(Engine& eng, int nranks) {
  std::vector<std::vector<Rec>> logs(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    eng.at_on(eng.lane_of(r), 1e-7 * r, [&eng, nranks, r, &logs] {
      cascade(eng, nranks, r, 0, 1, logs);
    });
  }
  eng.run();
  return logs;
}

TEST(EngineSharded, LaneMappingIsContiguousAndComplete) {
  Engine eng(sharded_cfg(4, 10));
  EXPECT_TRUE(eng.sharded());
  EXPECT_EQ(eng.lanes(), 4);
  int prev = 0;
  for (int r = 0; r < 10; ++r) {
    const int l = eng.lane_of(r);
    EXPECT_GE(l, prev);  // contiguous rank blocks, monotone in rank
    EXPECT_LT(l, eng.lanes());
    prev = l;
  }
  EXPECT_EQ(eng.lane_of(0), 0);
  EXPECT_EQ(eng.lane_of(9), eng.lanes() - 1);
  // Lanes are clamped to the rank count.
  Engine small(sharded_cfg(16, 3));
  EXPECT_EQ(small.lanes(), 3);
}

TEST(EngineSharded, SerialConfigSelectsReferenceEngine) {
  Engine eng(EngineConfig{});
  EXPECT_FALSE(eng.sharded());
  EXPECT_EQ(eng.lanes(), 1);
  EXPECT_EQ(eng.lane_of(7), 0);
  // at_on / after_on / shared degrade to plain scheduling and inline calls.
  int seen = 0;
  eng.at_on(0, 1.0, [&] { seen += 1; });
  eng.shared([&] { seen += 10; });
  EXPECT_EQ(seen, 10);
  EXPECT_EQ(eng.run(), 1.0);
  EXPECT_EQ(seen, 11);
}

TEST(EngineSharded, CascadeMatchesSerialExactly) {
  Engine serial{};
  const auto want = run_cascade(serial, 8);
  std::uint64_t total = 0;
  for (const auto& l : want) total += l.size();
  EXPECT_EQ(serial.events_processed(), total);
  for (const int lanes : {1, 2, 4, 8}) {
    Engine eng(sharded_cfg(lanes, 8));
    const auto got = run_cascade(eng, 8);
    EXPECT_EQ(got, want) << "lanes=" << lanes;
    EXPECT_EQ(eng.events_processed(), serial.events_processed())
        << "lanes=" << lanes;
    EXPECT_TRUE(eng.idle());
  }
}

TEST(EngineSharded, CascadeFinalTimeMatchesSerial) {
  Engine serial{};
  run_cascade(serial, 6);
  Engine eng(sharded_cfg(3, 6));
  run_cascade(eng, 6);
  // run() already returned inside run_cascade; compare the final clocks.
  EXPECT_EQ(eng.now(), serial.now());
}

TEST(EngineSharded, ThreadedDrainMatchesSerial) {
  Engine serial{};
  const auto want = run_cascade(serial, 8);
  for (const int threads : {2, 4}) {
    Engine eng(sharded_cfg(4, 8, threads));
    const auto got = run_cascade(eng, 8);
    EXPECT_EQ(got, want) << "threads=" << threads;
  }
}

TEST(EngineSharded, RepeatedRunsAreBitIdentical) {
  Engine a(sharded_cfg(4, 8, 2));
  Engine b(sharded_cfg(4, 8, 2));
  EXPECT_EQ(run_cascade(a, 8), run_cascade(b, 8));
}

TEST(EngineSharded, SharedTransactionsReplayInSerialOrder) {
  // Events on every lane, with colliding times across lanes, each append to
  // one shared log through Engine::shared(). The shared order must equal the
  // serial engine's inline call order.
  auto workload = [](Engine& eng, std::vector<int>& order) {
    for (int r = 0; r < 6; ++r) {
      for (int k = 0; k < 3; ++k) {
        eng.at_on(eng.lane_of(r), 1e-4 * k, [&eng, &order, r, k] {
          eng.shared([&order, r, k] { order.push_back(r * 10 + k); });
          // A follow-up same-lane event inside the window, which also logs:
          // interleaves lane events with transaction replays.
          eng.after_on(eng.lane_of(r), 1e-5, [&eng, &order, r, k] {
            eng.shared([&order, r, k] { order.push_back(100 + r * 10 + k); });
          });
        });
      }
    }
    eng.run();
  };
  std::vector<int> want;
  Engine serial{};
  workload(serial, want);
  ASSERT_EQ(want.size(), 36u);
  for (const int lanes : {1, 3, 6}) {
    std::vector<int> got;
    Engine eng(sharded_cfg(lanes, 6));
    workload(eng, got);
    EXPECT_EQ(got, want) << "lanes=" << lanes;
  }
}

TEST(EngineSharded, SharedSeesCallersVirtualNow) {
  // During barrier replay the clock must rewind to the caller's now.
  std::vector<Time> serial_times, sharded_times;
  auto workload = [](Engine& eng, std::vector<Time>& times) {
    for (int r = 0; r < 4; ++r) {
      eng.at_on(eng.lane_of(r), 1e-5 * (r + 1),
                [&eng, &times] { eng.shared([&eng, &times] { times.push_back(eng.now()); }); });
    }
    eng.run();
  };
  Engine serial{};
  workload(serial, serial_times);
  Engine eng(sharded_cfg(4, 4));
  workload(eng, sharded_times);
  EXPECT_EQ(sharded_times, serial_times);
}

TEST(EngineSharded, CancelAcrossEpochsSkipsTheEvent) {
  Engine eng(sharded_cfg(2, 4));
  int fired = 0;
  Engine::CancelToken token;
  // Arm a timer far beyond the epoch window (it is deferred + renumbered),
  // then cancel it from a later event on the same lane but a later epoch.
  eng.at_on(0, 0.0, [&] {
    token = eng.after_cancellable(10 * kLat, [&] { fired += 1; });
  });
  eng.at_on(0, 3 * kLat, [&] { Engine::cancel(token); });
  eng.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(eng.events_processed(), 2u);  // the cancelled timer never counts
  EXPECT_EQ(eng.pooled_cancel_slots(), 1u);
}

TEST(EngineSharded, CancelledInWindowTimerSkipsToo) {
  Engine serial{};
  Engine eng(sharded_cfg(2, 4));
  for (Engine* e : {&serial, &eng}) {
    int fired = 0;
    e->at_on(0, 0.0, [&, e] {
      auto token = e->after_cancellable(1e-5, [&] { fired += 100; });
      e->after_on(0, 1e-6, [&, token] { Engine::cancel(token); });
    });
    e->run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(e->events_processed(), 2u);
  }
}

TEST(EngineSharded, SlotPoolRecyclesPerLane) {
  Engine eng(sharded_cfg(2, 4));
  for (int round = 0; round < 3; ++round) {
    const Time base = eng.now();
    for (int r = 0; r < 4; ++r) {
      eng.at_on(eng.lane_of(r), base + 1e-6 * (r + 1), [&eng, r] {
        eng.after_cancellable(1e-6, [] {});
      });
    }
    eng.run();
    // Every armed timer fired and returned its slot to its lane's pool; the
    // pool never grows beyond one slot per rank.
    EXPECT_LE(eng.pooled_cancel_slots(), 4u);
  }
}

TEST(EngineSharded, DriverPushesBetweenRunsStaySerial) {
  // Multiple run() calls (one per fence) with driver pushes in between must
  // keep a monotone clock and consistent ordering. The cross-lane order is
  // observed through shared(), which is the engine's serial-order witness.
  Engine serial{};
  Engine eng(sharded_cfg(3, 6));
  for (Engine* e : {&serial, &eng}) {
    std::vector<int> order;
    auto mark = [e, &order](int id) {
      return [e, &order, id] { e->shared([&order, id] { order.push_back(id); }); };
    };
    e->at_on(e->lane_of(1), 1e-4, mark(1));
    e->run();
    e->at_on(e->lane_of(5), e->now() + 1e-4, mark(2));
    e->at_on(e->lane_of(0), e->now() + 1e-4, mark(3));
    e->run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  }
  EXPECT_EQ(eng.now(), serial.now());
}

EngineConfig adaptive_cfg(int lanes, int nranks, int threads = 1,
                          double cap = 64.0) {
  EngineConfig cfg = sharded_cfg(lanes, nranks, threads);
  cfg.adaptive = true;
  cfg.window_cap = cap;
  return cfg;
}

TEST(EngineSharded, ThreadedBarrierDeterministicAcrossThreadCounts) {
  // The barrier's parallel phases (pre-sorted drain, k-way merge, threaded
  // redistribution) must produce the serial pop order at every thread count,
  // including threads > lanes (idle workers) and threads > hardware cores.
  Engine serial{};
  const auto want = run_cascade(serial, 8);
  for (const int threads : {1, 2, 4, 8}) {
    Engine eng(sharded_cfg(8, 8, threads));
    const auto got = run_cascade(eng, 8);
    EXPECT_EQ(got, want) << "threads=" << threads;
    EXPECT_EQ(eng.events_processed(), serial.events_processed())
        << "threads=" << threads;
  }
}

TEST(EngineSharded, StatsCountersTrackTheRun) {
  Engine eng(sharded_cfg(4, 8, 2));
  run_cascade(eng, 8);
  const auto st = eng.stats();
  EXPECT_GT(st.epochs, 0u);
  EXPECT_GT(st.deferred_events, 0u);  // the cascade hops cross-lane
  EXPECT_GE(st.run_seconds, st.barrier_seconds);
  EXPECT_GE(st.barrier_seconds, 0.0);
  // Serial engines keep the sharded counters at zero but still time the run.
  Engine serial{};
  run_cascade(serial, 8);
  EXPECT_EQ(serial.stats().epochs, 0u);
  EXPECT_GT(serial.stats().run_seconds, 0.0);
}

TEST(EngineSharded, AdaptiveWindowsMatchSerialExactly) {
  Engine serial{};
  const auto want = run_cascade(serial, 8);
  for (const int threads : {1, 4}) {
    Engine eng(adaptive_cfg(4, 8, threads));
    const auto got = run_cascade(eng, 8);
    EXPECT_EQ(got, want) << "adaptive threads=" << threads;
    EXPECT_EQ(eng.now(), serial.now());
    EXPECT_EQ(eng.events_processed(), serial.events_processed());
  }
}

TEST(EngineSharded, AdaptiveExtensionsAmortizeEpochs) {
  // A sparse same-lane chain (events 10 lookaheads apart, every other lane
  // idle) forces the conservative engine through one ~lookahead-wide epoch
  // per event; the adaptive engine sees the other lanes' next-event time at
  // infinity, extends the window to the cap, and batches several events per
  // epoch. The chain itself must be untouched by the partition.
  auto chain = [](Engine& eng, std::vector<Time>& log) {
    struct Step {
      Engine* e;
      std::vector<Time>* log;
      int left;
      void operator()() const {
        log->push_back(e->now());
        if (left > 0) e->after_on(0, 10 * kLat, Step{e, log, left - 1});
      }
    };
    eng.at_on(0, kLat, Step{&eng, &log, 31});
    eng.run();
  };
  std::vector<Time> want;
  Engine serial{};
  chain(serial, want);
  ASSERT_EQ(want.size(), 32u);

  std::vector<Time> conservative_log, adaptive_log;
  Engine cons(sharded_cfg(4, 8));
  chain(cons, conservative_log);
  Engine adap(adaptive_cfg(4, 8));
  chain(adap, adaptive_log);
  EXPECT_EQ(conservative_log, want);
  EXPECT_EQ(adaptive_log, want);
  EXPECT_GT(adap.stats().adaptive_extensions, 0u);
  EXPECT_LT(adap.stats().epochs, cons.stats().epochs);
}

TEST(EngineSharded, DegenerateEpochWindowStillTerminates) {
  // Regression for the std::nextafter epoch guard: at t ~ 1e18 a lookahead
  // of 1e-9 vanishes in double rounding (start + lookahead == start), so an
  // unguarded window would drain zero events per epoch and spin forever.
  // The guard widens the window by one ULP; ties at the epoch start must
  // still replay in serial push order.
  constexpr Time kHuge = 1e18;
  auto workload = [](Engine& eng, std::vector<int>& order) {
    for (int r = 0; r < 4; ++r) {
      eng.at_on(eng.lane_of(r), kHuge, [&eng, &order, r] {
        eng.shared([&order, r] { order.push_back(r); });
        eng.after_on(eng.lane_of(r), 0.0, [&eng, &order, r] {
          eng.shared([&order, r] { order.push_back(10 + r); });
        });
      });
    }
    eng.run();
  };
  std::vector<int> want;
  Engine serial{};
  workload(serial, want);
  ASSERT_EQ(want.size(), 8u);
  for (const bool adaptive : {false, true}) {
    EngineConfig cfg = sharded_cfg(4, 4);
    cfg.lookahead = 1e-9;
    cfg.adaptive = adaptive;
    std::vector<int> got;
    Engine eng(cfg);
    workload(eng, got);
    EXPECT_EQ(got, want) << "adaptive=" << adaptive;
    EXPECT_EQ(eng.now(), serial.now());
    EXPECT_GT(eng.stats().epochs, 0u);
  }
}

// A closure two uint64 lanes too big for EventFn's inline buffer: forces the
// arena (or heap-fallback) path while staying under FnArena::kPayload.
struct FatPayload {
  std::uint64_t pad[7] = {1, 2, 3, 4, 5, 6, 7};
  std::uint64_t* sink;
  void operator()() const { *sink += pad[6]; }
};
static_assert(sizeof(FatPayload) > ttg::sim::EventFn::kInlineSize);
static_assert(sizeof(FatPayload) <= ttg::sim::FnArena::kPayload);

TEST(EventFnTest, InlineDispatchAndMove) {
  using ttg::sim::EventFn;
  std::uint64_t hits = 0;
  EventFn fn([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(fn));
  EventFn moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  moved();
  EXPECT_EQ(hits, 1u);
  moved.reset();
  EXPECT_FALSE(static_cast<bool>(moved));
}

TEST(EventFnTest, ArenaOverflowRecyclesBlocks) {
  using ttg::sim::EventFn;
  using ttg::sim::FnArena;
  FnArena arena;
  const std::uint64_t heap_before = EventFn::heap_allocations();
  std::uint64_t sink = 0;
  // First wave populates the slab; every later wave reuses freed blocks.
  for (int wave = 0; wave < 4; ++wave) {
    std::vector<EventFn> fns;
    for (int i = 0; i < 64; ++i) fns.emplace_back(FatPayload{.sink = &sink}, &arena);
    for (auto& f : fns) f();
  }
  EXPECT_EQ(sink, 4u * 64u * 7u);
  EXPECT_EQ(arena.slabs_allocated(), 1u);  // 256-block slab covers all waves
  EXPECT_EQ(EventFn::heap_allocations(), heap_before);
}

TEST(EventFnTest, NullArenaAndOversizeFallBackToHeapCounted) {
  using ttg::sim::EventFn;
  const std::uint64_t before = EventFn::heap_allocations();
  std::uint64_t sink = 0;
  {
    EventFn no_arena(FatPayload{.sink = &sink});  // fat + no arena -> heap
    no_arena();
  }
  EXPECT_EQ(EventFn::heap_allocations(), before + 1);
  struct Huge {
    std::uint64_t pad[32];
    std::uint64_t* sink;
    void operator()() const { *sink += 1; }
  };
  static_assert(sizeof(Huge) > ttg::sim::FnArena::kPayload);
  ttg::sim::FnArena arena;
  {
    EventFn oversize(Huge{.sink = &sink}, &arena);  // arena present but too small
    oversize();
  }
  EXPECT_EQ(EventFn::heap_allocations(), before + 2);
  EXPECT_EQ(arena.slabs_allocated(), 0u);
  EXPECT_EQ(sink, 8u);
}

TEST(EngineSharded, FatClosuresStayInArenasAcrossEpochs) {
  // Capture-heavy timers (> inline size) must come from the per-lane arenas:
  // after a warm-up wave, further waves on the same engine allocate no new
  // slabs and never touch the heap fallback.
  Engine eng(sharded_cfg(2, 4));
  std::uint64_t sink = 0;
  auto wave = [&] {
    const Time base = eng.now();
    for (int r = 0; r < 4; ++r) {
      eng.at_on(eng.lane_of(r), base + kLat * (r + 1),
                FatPayload{.sink = &sink});
      // Cancellable fat timers exercise slot + arena recycling together.
      eng.at_on(eng.lane_of(r), base + kLat * (r + 1) + 1e-6, [&eng, &sink] {
        eng.after_cancellable(1e-6, FatPayload{.sink = &sink});
      });
    }
    eng.run();
  };
  const std::uint64_t heap_before = ttg::sim::EventFn::heap_allocations();
  wave();
  const auto warm = eng.stats();
  for (int i = 0; i < 3; ++i) wave();
  const auto done = eng.stats();
  EXPECT_EQ(done.fn_arena_slabs, warm.fn_arena_slabs);  // steady state: flat
  EXPECT_EQ(ttg::sim::EventFn::heap_allocations(), heap_before);
  EXPECT_EQ(done.fn_heap_allocs, warm.fn_heap_allocs);
  EXPECT_GT(sink, 0u);
  EXPECT_LE(eng.pooled_cancel_slots(), 4u);
}

// GTEST_FLAG_SET only exists in googletest >= 1.12; fall back to the classic
// flag accessor on older releases.
void use_threadsafe_death_tests() {
#ifdef GTEST_FLAG_SET
  GTEST_FLAG_SET(death_test_style, "threadsafe");
#else
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
#endif
}

TEST(EngineShardedDeathTest, CrossLaneEventInsideLookaheadAborts) {
  use_threadsafe_death_tests();
  EXPECT_DEATH(
      {
        Engine eng(sharded_cfg(4, 8));
        eng.at_on(0, 0.0, [&eng] {
          // Tries to reach another lane in under the lookahead: forbidden.
          eng.after_on(eng.lanes() - 1, 1e-9, [] {});
        });
        eng.run();
      },
      "cross-lane event inside the lookahead window");
}

TEST(EngineShardedDeathTest, AdaptiveWindowStillRejectsLookaheadViolations) {
  use_threadsafe_death_tests();
  EXPECT_DEATH(
      {
        Engine eng(adaptive_cfg(4, 8));
        // Park late events on the other lanes (multi-active epoch, so the
        // windows stay conservative): adaptive mode must enforce the same
        // cross-lane latency contract as the conservative engine.
        for (int l = 1; l < 4; ++l) eng.at_on(l, 20 * kLat, [] {});
        eng.at_on(0, 0.0, [&eng] {
          eng.after_on(1, kLat / 2, [] {});  // sub-lookahead hop: forbidden
        });
        eng.run();
      },
      "cross-lane event inside the lookahead window");
}

TEST(EngineShardedDeathTest, RunUntilRequiresSerialEngine) {
  use_threadsafe_death_tests();
  EXPECT_DEATH(
      {
        Engine eng(sharded_cfg(2, 4));
        eng.run_until([] { return true; });
      },
      "run_until");
}

}  // namespace
