// Serial-vs-sharded equivalence: the sharded engine must be bit-identical
// to the serial reference for whole runtime workloads — same makespan bits,
// same communication/network counters, same trace totals — at several lane
// counts including the degenerate lanes == 1 configuration (full sharded
// machinery over a single lane). This is the contract that lets every
// checked-in baseline remain valid regardless of engine mode.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "apps/bspmm/bspmm_ttg.hpp"
#include "apps/cholesky/cholesky_ttg.hpp"
#include "linalg/matrix_gen.hpp"
#include "sparse/yukawa_gen.hpp"
#include "support/rng.hpp"
#include "ttg/ttg.hpp"

namespace {

using namespace ttg;

/// Everything we pin between two runs. All counter structs are plain
/// uint64 aggregates, so memcmp is an exact full-struct comparison; the
/// named fields are repeated individually for readable failure output.
struct Snapshot {
  double makespan = 0.0;
  std::uint64_t tasks = 0;
  std::uint64_t events = 0;
  rt::CommStats comm{};
  net::NetStats net{};
  std::size_t trace_tasks = 0;
  std::size_t trace_msgs = 0;
  std::size_t trace_wire = 0;
  std::size_t trace_faults = 0;
  rt::CommCounters totals{};
};

Snapshot snapshot(rt::World& w, double makespan, std::uint64_t tasks) {
  Snapshot s;
  s.makespan = makespan;
  s.tasks = tasks;
  s.events = w.engine().events_processed();
  s.comm = w.comm().stats();
  s.net = w.network().stats();
  s.trace_tasks = w.tracer().records().size();
  s.trace_msgs = w.tracer().messages().size();
  s.trace_wire = w.tracer().wire_events().size();
  s.trace_faults = w.tracer().fault_events().size();
  s.totals = w.tracer().totals();
  return s;
}

void expect_identical(const Snapshot& got, const Snapshot& want,
                      const std::string& what) {
  EXPECT_EQ(got.makespan, want.makespan) << what;  // bit-identical, not near
  EXPECT_EQ(got.tasks, want.tasks) << what;
  EXPECT_EQ(got.events, want.events) << what;
  EXPECT_EQ(got.comm.messages, want.comm.messages) << what;
  EXPECT_EQ(got.comm.splitmd_sends, want.comm.splitmd_sends) << what;
  EXPECT_EQ(got.comm.serializations, want.comm.serializations) << what;
  EXPECT_EQ(got.comm.broadcast_forwards, want.comm.broadcast_forwards) << what;
  EXPECT_EQ(got.comm.retries, want.comm.retries) << what;
  EXPECT_EQ(got.comm.dup_discards, want.comm.dup_discards) << what;
  EXPECT_EQ(got.comm.acks, want.comm.acks) << what;
  EXPECT_EQ(got.net.messages, want.net.messages) << what;
  EXPECT_EQ(got.net.control_msgs, want.net.control_msgs) << what;
  EXPECT_EQ(got.net.bytes, want.net.bytes) << what;
  EXPECT_EQ(got.net.rma_gets, want.net.rma_gets) << what;
  EXPECT_EQ(got.net.drops, want.net.drops) << what;
  EXPECT_EQ(got.net.duplicates, want.net.duplicates) << what;
  EXPECT_EQ(got.net.rma_delays, want.net.rma_delays) << what;
  EXPECT_EQ(got.trace_tasks, want.trace_tasks) << what;
  EXPECT_EQ(got.trace_msgs, want.trace_msgs) << what;
  EXPECT_EQ(got.trace_wire, want.trace_wire) << what;
  EXPECT_EQ(got.trace_faults, want.trace_faults) << what;
  EXPECT_EQ(0, std::memcmp(&got.comm, &want.comm, sizeof(rt::CommStats)))
      << what << ": CommStats diverged in an uncompared field";
  EXPECT_EQ(0, std::memcmp(&got.net, &want.net, sizeof(net::NetStats)))
      << what << ": NetStats diverged in an uncompared field";
  EXPECT_EQ(0, std::memcmp(&got.totals, &want.totals, sizeof(rt::CommCounters)))
      << what << ": trace totals diverged";
}

rt::WorldConfig make_cfg(int nranks, int lanes, const std::string& faults = "",
                         rt::BackendKind backend = rt::BackendKind::Parsec) {
  rt::WorldConfig cfg;
  cfg.nranks = nranks;
  cfg.ranks_per_node = 4;
  cfg.backend = backend;
  cfg.engine_lanes = lanes;
  if (!faults.empty()) cfg.faults = sim::FaultPlan::parse(faults, 42);
  return cfg;
}

Snapshot run_potrf_ghost(const rt::WorldConfig& cfg, int n, int bs) {
  rt::World w(cfg);
  w.enable_tracing();
  const auto res = apps::cholesky::run_ghost(w, n, bs);
  return snapshot(w, res.makespan, res.tasks);
}

Snapshot run_potrf_real(const rt::WorldConfig& cfg, int n, int bs,
                        linalg::TiledMatrix* factor) {
  rt::World w(cfg);
  w.enable_tracing();
  support::Rng rng(7);
  const auto a = linalg::random_spd(rng, n, bs);
  auto res = apps::cholesky::run(w, a);
  if (factor != nullptr) *factor = std::move(res.matrix);
  return snapshot(w, res.makespan, res.tasks);
}

const sparse::BlockSparseMatrix& yukawa_operand() {
  static const sparse::BlockSparseMatrix a = [] {
    sparse::YukawaParams yp;
    yp.natoms = 60;
    yp.max_tile = 64;
    yp.ghost = true;
    return sparse::yukawa_matrix(yp);
  }();
  return a;
}

Snapshot run_bspmm(const rt::WorldConfig& cfg) {
  rt::World w(cfg);
  w.enable_tracing();
  const auto& a = yukawa_operand();
  apps::bspmm::Options opt;
  opt.read_window = 8;
  opt.k_window = 2;
  opt.collect = false;
  const auto res = apps::bspmm::run(w, a, a, opt);
  return snapshot(w, res.makespan, res.tasks);
}

// Loss + perturbation + delayed-RMA plan: exercises the reliability layer
// (retransmission timers = cancellable events), the shared-lane fault
// ordinal stream, and — via latency=*:0.5 — a lookahead shrunk below the
// base network latency through FaultPlan::min_latency_factor.
const char* kFaultSpec =
    "drop=0.01,dup=0.02,straggler=*:1.5,latency=*:0.5,rma-delay=0.1:1e-4";

TEST(ScaleEquiv, PotrfGhostBitIdenticalAcrossLaneCounts) {
  const Snapshot want = run_potrf_ghost(make_cfg(8, 0), 240, 48);
  EXPECT_GT(want.tasks, 0u);
  for (const int lanes : {1, 3, 8}) {
    const Snapshot got = run_potrf_ghost(make_cfg(8, lanes), 240, 48);
    expect_identical(got, want, "potrf-ghost lanes=" + std::to_string(lanes));
  }
}

TEST(ScaleEquiv, PotrfGhostMadnessBackend) {
  const auto serial = make_cfg(8, 0, "", rt::BackendKind::Madness);
  const auto sharded = make_cfg(8, 4, "", rt::BackendKind::Madness);
  expect_identical(run_potrf_ghost(sharded, 240, 48),
                   run_potrf_ghost(serial, 240, 48), "potrf-ghost madness");
}

TEST(ScaleEquiv, PotrfRealFactorAndCollectedMatrix) {
  linalg::TiledMatrix serial_l, sharded_l;
  const Snapshot want = run_potrf_real(make_cfg(6, 0), 192, 48, &serial_l);
  const Snapshot got = run_potrf_real(make_cfg(6, 3), 192, 48, &sharded_l);
  expect_identical(got, want, "potrf-real lanes=3");
  // The collected factor is numerically *identical*, not just close: the
  // same kernels ran in the same order on the same bits.
  EXPECT_EQ(serial_l.max_abs_diff(sharded_l), 0.0);
}

TEST(ScaleEquiv, RunGhostMatchesMaterializedGhostMatrix) {
  // On-demand ghost synthesis (O(1) host state) vs a materialized ghost
  // matrix must be the same simulation, in both engine modes.
  for (const int lanes : {0, 3}) {
    rt::World w1(make_cfg(8, lanes));
    w1.enable_tracing();
    const auto ghost = linalg::ghost_matrix(240, 48);
    apps::cholesky::Options opt;
    opt.collect = false;
    const auto r1 = apps::cholesky::run(w1, ghost, opt);
    const Snapshot want = snapshot(w1, r1.makespan, r1.tasks);
    const Snapshot got = run_potrf_ghost(make_cfg(8, lanes), 240, 48);
    expect_identical(got, want, "run_ghost lanes=" + std::to_string(lanes));
  }
}

TEST(ScaleEquiv, BspmmBitIdenticalAcrossLaneCounts) {
  const Snapshot want = run_bspmm(make_cfg(8, 0));
  EXPECT_GT(want.tasks, 0u);
  for (const int lanes : {1, 4}) {
    const Snapshot got = run_bspmm(make_cfg(8, lanes));
    expect_identical(got, want, "bspmm lanes=" + std::to_string(lanes));
  }
}

TEST(ScaleEquiv, FaultInjectionBitIdenticalAcrossLaneCounts) {
  const Snapshot want = run_potrf_ghost(make_cfg(8, 0, kFaultSpec), 240, 48);
  // The plan must actually bite for this test to mean anything.
  EXPECT_GT(want.net.drops + want.net.duplicates + want.net.rma_delays, 0u);
  for (const int lanes : {1, 3, 8}) {
    const Snapshot got = run_potrf_ghost(make_cfg(8, lanes, kFaultSpec), 240, 48);
    expect_identical(got, want, "faults lanes=" + std::to_string(lanes));
  }
}

TEST(ScaleEquiv, ThreadedBarrierBitIdenticalAcrossThreadCounts) {
  // Worker threads drain lanes and redistribute at barriers; the merge +
  // renumber must keep the serial pop order at every thread count.
  const Snapshot want = run_potrf_ghost(make_cfg(8, 0), 240, 48);
  for (const int threads : {2, 4}) {
    auto cfg = make_cfg(8, 4);
    cfg.engine_threads = threads;
    expect_identical(run_potrf_ghost(cfg, 240, 48), want,
                     "threads=" + std::to_string(threads));
  }
}

TEST(ScaleEquiv, AdaptiveLookaheadBitIdentical) {
  // Adaptive windows change the epoch partition (fewer, wider epochs), never
  // the result — with the default cap and with a tight one.
  const Snapshot want = run_potrf_ghost(make_cfg(8, 0), 240, 48);
  for (const double cap : {64.0, 2.0}) {
    auto cfg = make_cfg(8, 4);
    cfg.engine_adaptive_lookahead = true;
    cfg.engine_window_cap = cap;
    expect_identical(run_potrf_ghost(cfg, 240, 48), want,
                     "adaptive cap=" + std::to_string(cap));
  }
}

TEST(ScaleEquiv, ThreadedAdaptiveUnderFaultsBitIdentical) {
  // The full stack at once: worker threads, adaptive windows, and a fault
  // plan that shrinks the lookahead and arms retransmission timers.
  const Snapshot want = run_potrf_ghost(make_cfg(8, 0, kFaultSpec), 240, 48);
  auto cfg = make_cfg(8, 3, kFaultSpec);
  cfg.engine_threads = 4;
  cfg.engine_adaptive_lookahead = true;
  expect_identical(run_potrf_ghost(cfg, 240, 48), want,
                   "threads=4 adaptive faults");
}

TEST(ScaleEquiv, ExplicitLookaheadOverrideStaysIdentical) {
  // A much smaller window changes the epoch partition, never the result.
  const Snapshot want = run_potrf_ghost(make_cfg(8, 0), 240, 48);
  auto cfg = make_cfg(8, 4);
  cfg.engine_lookahead = cfg.machine.net_latency / 8.0;
  expect_identical(run_potrf_ghost(cfg, 240, 48), want, "short lookahead");
}

}  // namespace
