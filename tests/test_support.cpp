// Unit tests for the support utilities (hashing, RNG, tables, CLI).
#include <gtest/gtest.h>

#include <set>

#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace ttg::support;

TEST(Hash, CombineChangesValue) {
  std::uint64_t a = 1;
  std::uint64_t b = 1;
  hash_combine(a, 42);
  EXPECT_NE(a, b);
  hash_combine(b, 42);
  EXPECT_EQ(a, b);  // deterministic
}

TEST(Hash, MemberHashPreferred) {
  struct K {
    std::uint64_t hash() const { return 7; }
  };
  EXPECT_EQ(hash_value(K{}), 7u);
}

TEST(Hash, StdHashFallback) {
  EXPECT_EQ(hash_value(123), std::hash<int>{}(123));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(Rng, UniformRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r(2);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, PermutationIsPermutation) {
  Rng r(3);
  auto p = r.permutation(50);
  std::set<std::size_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(*s.rbegin(), 49u);
}

TEST(Rng, NormalMoments) {
  Rng r(4);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Table, AlignsAndCsv) {
  Table t("demo", {"a", "bee"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const auto s = t.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_EQ(t.csv(), "a,bee\n1,2\n333,4\n");
}

TEST(Table, RejectsBadArity) {
  Table t("x", {"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ApiError);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_si(1.5e9, 1), "1.5 G");
  EXPECT_EQ(fmt_si(2500.0, 1), "2.5 K");
  EXPECT_EQ(fmt_si(12.0, 0), "12");
}

TEST(Cli, ParsesOptionsAndFlags) {
  Cli cli("prog", "test");
  cli.option("nodes", "4", "node count");
  cli.option("machine", "hawk", "machine");
  cli.flag("full", "run full scale");
  const char* argv[] = {"prog", "--nodes", "16", "--machine=seawulf", "--full"};
  ASSERT_TRUE(cli.parse(5, const_cast<char**>(argv)));
  EXPECT_EQ(cli.get_int("nodes"), 16);
  EXPECT_EQ(cli.get("machine"), "seawulf");
  EXPECT_TRUE(cli.get_flag("full"));
}

TEST(Cli, DefaultsApply) {
  Cli cli("prog", "test");
  cli.option("nodes", "4", "node count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(cli.get_int("nodes"), 4);
}

TEST(Cli, RejectsUnknownOption) {
  Cli cli("prog", "test");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(cli.parse(3, const_cast<char**>(argv)), ApiError);
}

TEST(Cli, RejectsMissingValue) {
  Cli cli("prog", "test");
  cli.option("n", "1", "n");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, const_cast<char**>(argv)), ApiError);
}

TEST(Error, RequireThrowsApiError) {
  EXPECT_THROW(TTG_REQUIRE(false, "nope"), ApiError);
  EXPECT_NO_THROW(TTG_REQUIRE(true, "fine"));
}

}  // namespace
